package core

import "time"

// Bottom is the reserved value that cannot be enqueued: it encodes the empty
// cell (⊥) in the ring. The public API's typed facade removes the
// restriction for end users.
const Bottom = ^uint64(0)

// Default tuning values. See Config.
const (
	DefaultRingOrder       = 12 // R = 4096 cells
	DefaultStarvationLimit = 64
	DefaultSpinWait        = 64
	DefaultClusterTimeout  = 100 * time.Microsecond
	// DequeueWait backoff bounds: the first sleep after the spin phase and
	// the cap the exponential doubling saturates at.
	DefaultWaitBackoffMin = 4 * time.Microsecond
	DefaultWaitBackoffMax = time.Millisecond
	// MaxRingOrder keeps index arithmetic (idx+R) comfortably inside the
	// 63-bit index field. The paper's largest evaluated ring is 2^17.
	MaxRingOrder = 26
	// DefaultLatencySampleN is the default 1-in-N latency sampling stride
	// when telemetry is enabled without an explicit rate.
	DefaultLatencySampleN = 1024
)

// Reclamation selects how retired CRQ rings are protected and reclaimed.
type Reclamation int

const (
	// ReclaimHazard is the paper-faithful default: hazard pointers protect
	// the ring an operation works in, and retired rings are recycled once
	// unprotected. Per-operation cost: one pointer publication plus a
	// revalidating reread (§5 footnote 6 of the paper).
	ReclaimHazard Reclamation = iota
	// ReclaimEpoch uses epoch-based reclamation: one pin/unpin pair per
	// operation, cheaper than hazard publication, but a stalled thread
	// delays all reclamation. Rings are still recycled.
	ReclaimEpoch
	// ReclaimGC relies entirely on Go's garbage collector: zero
	// per-operation overhead, no recycling (each appended ring is a fresh
	// allocation). Unavailable to the paper's C implementation.
	ReclaimGC
)

// String returns the mode name used in benchmarks and docs.
func (r Reclamation) String() string {
	switch r {
	case ReclaimEpoch:
		return "epoch"
	case ReclaimGC:
		return "gc"
	default:
		return "hazard"
	}
}

// Config tunes the CRQ and LCRQ algorithms. The zero value selects the
// defaults above. Config values are plumbed unexported through queues after
// normalization, so a Config can be reused and modified freely by callers.
type Config struct {
	// RingOrder is log2 of the ring size R. The paper's evaluation uses
	// 2^17; its sensitivity study (Figure 9) shows R ≥ 32 already wins on a
	// single processor. 0 selects DefaultRingOrder.
	RingOrder int

	// Padded pads each ring cell to 128 bytes (a false-sharing range) as in
	// Figure 3a. Unpadded cells pack eight per cache line, trading false
	// sharing for footprint; the ablation bench quantifies the difference.
	// The default (zero value) is padded; set NoPadding to disable.
	NoPadding bool

	// StarvationLimit is how many failed enqueue attempts (F&As) the
	// starving() predicate tolerates before closing the ring. 0 selects
	// DefaultStarvationLimit.
	StarvationLimit int

	// SpinWait bounds the dequeuer's wait for a matching active enqueuer
	// before it performs an empty transition (§4.1.1, "bounded waiting for
	// matching enqueues"). 0 selects DefaultSpinWait; negative disables the
	// optimization.
	SpinWait int

	// CASLoopFAA emulates every head/tail fetch-and-add with a CAS loop,
	// producing the paper's LCRQ-CAS comparison point.
	CASLoopFAA bool

	// Hierarchical enables the LCRQ+H cluster-batching optimization: an
	// operation arriving from a different cluster than the ring's current
	// one waits up to ClusterTimeout before barging in.
	Hierarchical bool

	// ClusterTimeout is the LCRQ+H wait bound. 0 selects
	// DefaultClusterTimeout (the paper evaluates 100 µs).
	ClusterTimeout time.Duration

	// NoRecycle disables hazard-pointer-based ring recycling, letting the
	// garbage collector reclaim retired CRQs instead. Recycling is on by
	// default to keep ring allocation off the enqueue path.
	NoRecycle bool

	// NoHazard removes hazard pointers from the operation path entirely.
	// In the paper's C setting this would be a use-after-free; under Go's
	// garbage collector it is safe, and the option exists to measure what
	// the paper-faithful hazard-pointer publication (store + fence +
	// revalidate, §5 footnote 6) costs per operation. NoHazard implies
	// NoRecycle, since recycling is exactly what requires reclamation
	// safety. Equivalent to Reclamation: ReclaimGC.
	NoHazard bool

	// Reclamation selects the safe-memory-reclamation scheme; see the
	// Reclamation constants. The zero value is the paper-faithful
	// ReclaimHazard. Setting NoHazard forces ReclaimGC.
	Reclamation Reclamation

	// Telemetry enables the live telemetry layer: per-handle counters are
	// periodically published for lock-free aggregation, per-op latency is
	// sampled 1-in-LatencySampleN, and ring-lifecycle events are delivered
	// to Tap. Off by default; when off, the operation fast path is guarded
	// by a single nil-pointer check and nothing else.
	Telemetry bool

	// LatencySampleN is the telemetry latency sampling stride: every N-th
	// operation per handle is timed. 0 selects DefaultLatencySampleN;
	// negative disables latency sampling while keeping counters and gauges.
	LatencySampleN int

	// Tap receives ring-lifecycle events from the queue's slow paths (see
	// RingEvent). The public layer installs the telemetry sink here; nil
	// disables event delivery. Taps never run on the fast path.
	Tap Tap

	// WaitBackoffMin and WaitBackoffMax bound the exponential backoff the
	// public DequeueWait uses between empty polls: after a brief spin the
	// waiter sleeps WaitBackoffMin, doubling up to WaitBackoffMax. Zero
	// values select the defaults above.
	WaitBackoffMin time.Duration
	WaitBackoffMax time.Duration
}

// normalized returns c with defaults applied and bounds enforced.
func (c Config) normalized() Config {
	if c.RingOrder == 0 {
		c.RingOrder = DefaultRingOrder
	}
	if c.RingOrder < 1 {
		c.RingOrder = 1
	}
	if c.RingOrder > MaxRingOrder {
		c.RingOrder = MaxRingOrder
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = DefaultStarvationLimit
	}
	if c.StarvationLimit < 1 {
		c.StarvationLimit = 1
	}
	if c.SpinWait == 0 {
		c.SpinWait = DefaultSpinWait
	}
	if c.SpinWait < 0 {
		c.SpinWait = 0
	}
	if c.ClusterTimeout == 0 {
		c.ClusterTimeout = DefaultClusterTimeout
	}
	if c.WaitBackoffMin <= 0 {
		c.WaitBackoffMin = DefaultWaitBackoffMin
	}
	if c.WaitBackoffMax <= 0 {
		c.WaitBackoffMax = DefaultWaitBackoffMax
	}
	if c.WaitBackoffMax < c.WaitBackoffMin {
		c.WaitBackoffMax = c.WaitBackoffMin
	}
	if c.LatencySampleN == 0 {
		c.LatencySampleN = DefaultLatencySampleN
	}
	if c.LatencySampleN < 0 {
		c.LatencySampleN = 0 // sampling disabled
	}
	if c.NoHazard {
		c.Reclamation = ReclaimGC
	}
	if c.Reclamation == ReclaimGC {
		c.NoHazard = true
		c.NoRecycle = true
	}
	return c
}

// RingSize returns the number of cells R implied by the configuration.
func (c Config) RingSize() int { return 1 << c.normalized().RingOrder }
