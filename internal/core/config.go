package core

import (
	"runtime"
	"time"
)

// Bottom is the reserved value that cannot be enqueued: it encodes the empty
// cell (⊥) in the ring. The public API's typed facade removes the
// restriction for end users.
const Bottom = ^uint64(0)

// Default tuning values. See Config.
const (
	DefaultRingOrder       = 12 // R = 4096 cells
	DefaultStarvationLimit = 64
	DefaultSpinWait        = 64
	DefaultClusterTimeout  = 100 * time.Microsecond
	// DequeueWait backoff bounds: the first sleep after the spin phase and
	// the cap the exponential doubling saturates at.
	DefaultWaitBackoffMin = 4 * time.Microsecond
	DefaultWaitBackoffMax = time.Millisecond
	// MaxRingOrder keeps index arithmetic (idx+R) comfortably inside the
	// 63-bit index field. The paper's largest evaluated ring is 2^17.
	MaxRingOrder = 26
	// DefaultLatencySampleN is the default 1-in-N latency sampling stride
	// when telemetry is enabled without an explicit rate.
	DefaultLatencySampleN = 1024
	// DefaultTraceSampleN is the default 1-in-N item-trace sampling stride
	// when tracing is enabled without an explicit rate.
	DefaultTraceSampleN = 1024
	// DefaultStallAge is the age past which a pinned epoch record lagging
	// the global epoch is declared stalled-by-policy, when stall recovery
	// is enabled without an explicit age. Bounded epoch-mode queues enable
	// it automatically: a bounded queue that cannot reclaim is a queue that
	// cannot accept.
	DefaultStallAge = 10 * time.Millisecond
	// DefaultWatchdogInterval is the watchdog check period when enabled
	// without an explicit interval.
	DefaultWatchdogInterval = 100 * time.Millisecond
	// MinMaxRings is the smallest enforceable ring budget. The terminal
	// ring of the chain is never retired in place (a drained closed ring is
	// only unlinked once a successor exists), so a budget of 1 would wedge
	// permanently after the first ring close; 2 always leaves room for the
	// successor that lets the head ring retire.
	MinMaxRings = 2
	// Adaptive contention controller defaults (AdaptiveContention): the
	// MIAD backoff bounds, the additive decrease step, and the cap on the
	// watchdog remediation's starvation-limit boost shift. These mirror the
	// contention package's defaults; see that package for the rationale.
	DefaultAdaptSpinMin  = 32
	DefaultAdaptSpinMax  = 4096
	DefaultAdaptDecay    = 8
	DefaultAdaptBoostMax = 3
	// MaxAdaptBoost bounds any configured boost shift so the widened
	// starvation limit stays far from overflowing the tries counter.
	MaxAdaptBoost = 16
)

// Reclamation selects how retired CRQ rings are protected and reclaimed.
type Reclamation int

const (
	// ReclaimHazard is the paper-faithful default: hazard pointers protect
	// the ring an operation works in, and retired rings are recycled once
	// unprotected. Per-operation cost: one pointer publication plus a
	// revalidating reread (§5 footnote 6 of the paper).
	ReclaimHazard Reclamation = iota
	// ReclaimEpoch uses epoch-based reclamation: one pin/unpin pair per
	// operation, cheaper than hazard publication, but a stalled thread
	// delays all reclamation. Rings are still recycled.
	ReclaimEpoch
	// ReclaimGC relies entirely on Go's garbage collector: zero
	// per-operation overhead, no recycling (each appended ring is a fresh
	// allocation). Unavailable to the paper's C implementation.
	ReclaimGC
)

// RingKind selects the ring engine inside each CRQ segment.
type RingKind int

const (
	// RingAuto picks per GOARCH: the paper's CAS2 cells on amd64 (where
	// CMPXCHG16B exists, including the purego/race builds that emulate it,
	// for layout comparability), the portable SCQ ring everywhere else.
	RingAuto RingKind = iota
	// RingCAS2 forces the paper's 128-bit-cell layout (Figure 3). On
	// non-amd64 builds its CAS2 runs on the striped-spinlock emulation,
	// which is not lock-free.
	RingCAS2
	// RingSCQ forces the portable single-word ring (Nikolaev's SCQ; see
	// scq.go and DESIGN.md §16): lock-free on every GOARCH.
	RingSCQ
)

// String returns the ring name used in benchmarks and docs.
func (k RingKind) String() string {
	switch k {
	case RingCAS2:
		return "cas2"
	case RingSCQ:
		return "scq"
	default:
		return "auto"
	}
}

// String returns the mode name used in benchmarks and docs.
func (r Reclamation) String() string {
	switch r {
	case ReclaimEpoch:
		return "epoch"
	case ReclaimGC:
		return "gc"
	default:
		return "hazard"
	}
}

// Config tunes the CRQ and LCRQ algorithms. The zero value selects the
// defaults above. Config values are plumbed unexported through queues after
// normalization, so a Config can be reused and modified freely by callers.
type Config struct {
	// RingOrder is log2 of the ring size R. The paper's evaluation uses
	// 2^17; its sensitivity study (Figure 9) shows R ≥ 32 already wins on a
	// single processor. 0 selects DefaultRingOrder.
	RingOrder int

	// Padded pads each ring cell to 128 bytes (a false-sharing range) as in
	// Figure 3a. Unpadded cells pack eight per cache line, trading false
	// sharing for footprint; the ablation bench quantifies the difference.
	// The default (zero value) is padded; set NoPadding to disable.
	NoPadding bool

	// StarvationLimit is how many failed enqueue attempts (F&As) the
	// starving() predicate tolerates before closing the ring. 0 selects
	// DefaultStarvationLimit.
	StarvationLimit int

	// SpinWait bounds the dequeuer's wait for a matching active enqueuer
	// before it performs an empty transition (§4.1.1, "bounded waiting for
	// matching enqueues"). 0 selects DefaultSpinWait; negative disables the
	// optimization.
	SpinWait int

	// CASLoopFAA emulates every head/tail fetch-and-add with a CAS loop,
	// producing the paper's LCRQ-CAS comparison point.
	CASLoopFAA bool

	// Hierarchical enables the LCRQ+H cluster-batching optimization: an
	// operation arriving from a different cluster than the ring's current
	// one waits up to ClusterTimeout before barging in.
	Hierarchical bool

	// ClusterTimeout is the LCRQ+H wait bound. 0 selects
	// DefaultClusterTimeout (the paper evaluates 100 µs).
	ClusterTimeout time.Duration

	// NoRecycle disables hazard-pointer-based ring recycling, letting the
	// garbage collector reclaim retired CRQs instead. Recycling is on by
	// default to keep ring allocation off the enqueue path.
	NoRecycle bool

	// NoHazard removes hazard pointers from the operation path entirely.
	// In the paper's C setting this would be a use-after-free; under Go's
	// garbage collector it is safe, and the option exists to measure what
	// the paper-faithful hazard-pointer publication (store + fence +
	// revalidate, §5 footnote 6) costs per operation. NoHazard implies
	// NoRecycle, since recycling is exactly what requires reclamation
	// safety. Equivalent to Reclamation: ReclaimGC.
	NoHazard bool

	// Reclamation selects the safe-memory-reclamation scheme; see the
	// Reclamation constants. The zero value is the paper-faithful
	// ReclaimHazard. Setting NoHazard forces ReclaimGC.
	Reclamation Reclamation

	// Telemetry enables the live telemetry layer: per-handle counters are
	// periodically published for lock-free aggregation, per-op latency is
	// sampled 1-in-LatencySampleN, and ring-lifecycle events are delivered
	// to Tap. Off by default; when off, the operation fast path is guarded
	// by a single nil-pointer check and nothing else.
	Telemetry bool

	// LatencySampleN is the telemetry latency sampling stride: every N-th
	// operation per handle is timed. 0 selects DefaultLatencySampleN;
	// negative disables latency sampling while keeping counters and gauges.
	LatencySampleN int

	// Tap receives ring-lifecycle events from the queue's slow paths (see
	// RingEvent). The public layer installs the telemetry sink here; nil
	// disables event delivery. Taps never run on the fast path.
	Tap Tap

	// TraceSampleN enables item-level tracing: every ring allocates a
	// parallel stamp array, and each handle stamps a trace ID + enqueue
	// timestamp into 1 in TraceSampleN of its enqueued items; the dequeue
	// that claims a stamped item measures its ring sojourn and reports it to
	// TraceTap. 0 disables tracing entirely (no stamp arrays, dead branches
	// only); negative allocates the stamp machinery but never self-arms, so
	// only explicitly forced traces (Handle.ForceTrace) are stamped.
	TraceSampleN int

	// TraceTap receives the sojourn observation of every stamped item a
	// dequeue claims (see TraceTap). The public layer installs the telemetry
	// sink here; nil discards the observations (per-op results remain
	// readable via Handle.DequeueTraces).
	TraceTap TraceTap

	// WaitBackoffMin and WaitBackoffMax bound the exponential backoff the
	// public DequeueWait uses between empty polls: after a brief spin the
	// waiter sleeps WaitBackoffMin, doubling up to WaitBackoffMax. Zero
	// values select the defaults above. EnqueueWait shares the bounds.
	WaitBackoffMin time.Duration
	WaitBackoffMax time.Duration

	// Capacity bounds the number of items in flight: an enqueue that would
	// push the exact item account past Capacity is rejected (EnqFull)
	// instead of growing the ring chain. 0 leaves the queue unbounded.
	// Bounded mode maintains the account with one atomic add per operation;
	// unbounded queues skip it entirely.
	Capacity int64

	// MaxRings bounds the number of ring segments linked in the queue's
	// list: an enqueue that would need to append past the budget is
	// rejected (EnqFull). 0 derives the budget from Capacity when that is
	// set (⌈Capacity/R⌉+1, covering one drained-but-unretired head ring)
	// and otherwise leaves the chain unbounded. Values below MinMaxRings
	// are raised to it — a budget of 1 would wedge on the first ring close.
	MaxRings int

	// ReclamationBatch is the hazard-pointer scan threshold: a thread's
	// retired list is scanned once it holds ReclamationBatch × (number of
	// participating records) entries. Smaller values tighten the
	// retired-memory bound at the cost of more frequent O(H) scans. 0
	// selects the hazard package default (8).
	ReclamationBatch int

	// StallAge is the epoch-reclamation stall threshold: a pinned record
	// observed lagging the global epoch for longer than StallAge is
	// declared stalled-by-policy, excluded from blocking advancement, and
	// reported via the Tap (EvEpochStall); while any record is stalled,
	// reclaimed rings are dropped to the garbage collector instead of
	// recycled, since the stalled thread may still hold them. 0 disables
	// stall detection except in bounded epoch mode, where DefaultStallAge
	// is applied; negative disables it unconditionally.
	StallAge time.Duration

	// Watchdog is the health-check interval of the public layer's
	// background watchdog; 0 disables it. Consumed above core (like
	// Telemetry); the core only carries the setting.
	Watchdog time.Duration

	// AdaptiveContention arms the per-handle adaptive contention
	// controller (internal/contention): failed cell attempts raise a
	// multiplicative-increase/additive-decrease backoff, the starvation
	// threshold widens with the measured contention, and the public wait
	// loops remember their backoff level across calls. Off by default —
	// the fixed constants above remain authoritative until the oversub
	// bench gate proves parity for a workload.
	AdaptiveContention bool

	// AdaptSpinMin and AdaptSpinMax bound the controller's backoff level
	// in spin iterations. 0 selects the defaults; negative values also
	// clamp to the defaults, and an inverted pair is repaired by raising
	// max to min (the same treatment WaitBackoffMin/Max receive).
	AdaptSpinMin int
	AdaptSpinMax int

	// AdaptDecay is the additive decrease applied to the backoff level per
	// completed operation. 0 or negative selects the default.
	AdaptDecay int

	// AdaptBoostMax caps the starvation-limit boost shift the watchdog
	// remediation may apply (limit << boost). 0 selects the default;
	// negative disables remediation (cap 0); values past MaxAdaptBoost are
	// clamped to it.
	AdaptBoostMax int

	// Ring selects the ring engine: the paper's CAS2 cells or the portable
	// single-word SCQ ring. The zero value (RingAuto) resolves per GOARCH —
	// CAS2 on amd64, SCQ elsewhere — so non-x86 platforms get a lock-free
	// queue by default instead of the spinlock-emulated CAS2.
	Ring RingKind
}

// normalized returns c with defaults applied and bounds enforced.
func (c Config) normalized() Config {
	if c.RingOrder == 0 {
		c.RingOrder = DefaultRingOrder
	}
	if c.RingOrder < 1 {
		c.RingOrder = 1
	}
	if c.RingOrder > MaxRingOrder {
		c.RingOrder = MaxRingOrder
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = DefaultStarvationLimit
	}
	if c.StarvationLimit < 1 {
		c.StarvationLimit = 1
	}
	if c.SpinWait == 0 {
		c.SpinWait = DefaultSpinWait
	}
	if c.SpinWait < 0 {
		c.SpinWait = 0
	}
	if c.ClusterTimeout == 0 {
		c.ClusterTimeout = DefaultClusterTimeout
	}
	if c.WaitBackoffMin <= 0 {
		c.WaitBackoffMin = DefaultWaitBackoffMin
	}
	if c.WaitBackoffMax <= 0 {
		c.WaitBackoffMax = DefaultWaitBackoffMax
	}
	if c.WaitBackoffMax < c.WaitBackoffMin {
		c.WaitBackoffMax = c.WaitBackoffMin
	}
	if c.LatencySampleN == 0 {
		c.LatencySampleN = DefaultLatencySampleN
	}
	if c.LatencySampleN < 0 {
		c.LatencySampleN = 0 // sampling disabled
	}
	if c.NoHazard {
		c.Reclamation = ReclaimGC
	}
	if c.Reclamation == ReclaimGC {
		c.NoHazard = true
		c.NoRecycle = true
	}
	if c.Capacity < 0 {
		c.Capacity = 0
	}
	if c.MaxRings < 0 {
		c.MaxRings = 0
	}
	if c.Capacity > 0 && c.MaxRings == 0 {
		r := int64(1) << c.RingOrder
		c.MaxRings = int((c.Capacity+r-1)/r) + 1
	}
	if c.MaxRings > 0 && c.MaxRings < MinMaxRings {
		c.MaxRings = MinMaxRings
	}
	if c.ReclamationBatch < 0 {
		c.ReclamationBatch = 0
	}
	if c.StallAge == 0 && c.Reclamation == ReclaimEpoch && c.MaxRings > 0 {
		c.StallAge = DefaultStallAge
	}
	if c.StallAge < 0 {
		c.StallAge = 0
	}
	if c.Watchdog < 0 {
		c.Watchdog = 0
	}
	if c.AdaptSpinMin <= 0 {
		c.AdaptSpinMin = DefaultAdaptSpinMin
	}
	if c.AdaptSpinMax <= 0 {
		c.AdaptSpinMax = DefaultAdaptSpinMax
	}
	if c.AdaptSpinMax < c.AdaptSpinMin {
		c.AdaptSpinMax = c.AdaptSpinMin
	}
	if c.AdaptDecay <= 0 {
		c.AdaptDecay = DefaultAdaptDecay
	}
	if c.AdaptBoostMax == 0 {
		c.AdaptBoostMax = DefaultAdaptBoostMax
	}
	if c.AdaptBoostMax < 0 {
		c.AdaptBoostMax = -1 // remediation disabled
	}
	if c.AdaptBoostMax > MaxAdaptBoost {
		c.AdaptBoostMax = MaxAdaptBoost
	}
	if c.Ring == RingAuto {
		if runtime.GOARCH == "amd64" {
			c.Ring = RingCAS2
		} else {
			c.Ring = RingSCQ
		}
	}
	return c
}

// Bounded reports whether the configuration enforces an item or ring
// budget.
func (c Config) Bounded() bool {
	n := c.normalized()
	return n.Capacity > 0 || n.MaxRings > 0
}

// RingSize returns the number of cells R implied by the configuration.
func (c Config) RingSize() int { return 1 << c.normalized().RingOrder }
