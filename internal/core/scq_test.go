package core

// Tests of the portable SCQ ring engine (scq.go): the cycle-tagged entry
// protocol across ring-size and cycle boundaries, the fullness → close and
// threshold → EMPTY contracts the LCRQ list layer relies on, and the
// engine's behaviour composed under the full list layer.

import (
	"runtime"
	"sync"
	"testing"
)

func scqCfg(order int) Config {
	c := smallCfg(order)
	c.Ring = RingSCQ
	return c
}

func TestRingAutoSelection(t *testing.T) {
	got := Config{}.normalized().Ring
	if runtime.GOARCH == "amd64" {
		if got != RingCAS2 {
			t.Fatalf("RingAuto on amd64 = %v, want cas2", got)
		}
	} else if got != RingSCQ {
		t.Fatalf("RingAuto on %s = %v, want scq", runtime.GOARCH, got)
	}
	if forced := (Config{Ring: RingSCQ}).normalized().Ring; forced != RingSCQ {
		t.Fatalf("explicit RingSCQ not preserved: %v", forced)
	}
	q := NewCRQ(scqCfg(2))
	if !q.Portable() {
		t.Fatal("RingSCQ config did not build the SCQ engine")
	}
}

func TestSCQRemapBijective(t *testing.T) {
	for order := 1; order <= 8; order++ {
		s := newSCQRing(order)
		slots := uint64(2) << order
		seen := make(map[uint64]bool, slots)
		for i := uint64(0); i < slots; i++ {
			j := s.remap(i)
			if j > s.slotMask {
				t.Fatalf("order %d: remap(%d) = %d out of range", order, i, j)
			}
			if seen[j] {
				t.Fatalf("order %d: remap collision at %d", order, i)
			}
			seen[j] = true
		}
		// remap must be cycle-invariant: index i and i+2n share a slot.
		if s.remap(3) != s.remap(3+slots) {
			t.Fatalf("order %d: remap not periodic in the ring size", order)
		}
	}
}

// TestSCQCycleWraparound drives a tiny ring through many full cycles, with
// the resident population straddling ring-size boundaries, so head/tail
// indices cross the cycle-tag boundary while entries still hold live
// indices from the previous lap. FIFO order must survive every crossing.
func TestSCQCycleWraparound(t *testing.T) {
	for _, order := range []int{1, 2} {
		q := NewCRQ(scqCfg(order))
		h := NewHandle()
		n := uint64(1) << order

		next := uint64(1) // value to enqueue next (Bottom-safe, nonzero)
		expect := uint64(1)
		// Keep the queue at a resident population of n−1..n so every lap
		// reuses entries that were occupied in the previous cycle.
		for i := 0; i < 64*int(n); i++ {
			for q.tail.Load()-q.head.Load() < n {
				if !q.Enqueue(h, next) {
					t.Fatalf("order %d: ring closed unexpectedly at %d", order, next)
				}
				next++
			}
			v, ok := q.Dequeue(h)
			if !ok {
				t.Fatalf("order %d: spurious EMPTY at expect=%d", order, expect)
			}
			if v != expect {
				t.Fatalf("order %d: FIFO violated: got %d want %d", order, v, expect)
			}
			expect++
		}
		// Drain and verify the tail of the sequence.
		for {
			v, ok := q.Dequeue(h)
			if !ok {
				break
			}
			if v != expect {
				t.Fatalf("order %d: drain FIFO violated: got %d want %d", order, v, expect)
			}
			expect++
		}
		if expect != next {
			t.Fatalf("order %d: lost items: drained to %d, enqueued to %d", order, expect, next)
		}
		if q.Closed() {
			t.Fatalf("order %d: ring closed during in-capacity cycling", order)
		}
	}
}

// TestSCQFullClosesRing: the (n+1)-th resident enqueue finds the free-index
// queue empty and must close the ring — the CRQ full contract the list
// layer's append protocol depends on.
func TestSCQFullClosesRing(t *testing.T) {
	q := NewCRQ(scqCfg(2)) // n = 4 data slots
	h := NewHandle()
	for i := uint64(1); i <= 4; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if q.Enqueue(h, 5) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	if !q.Closed() {
		t.Fatal("full ring not closed")
	}
	if h.C.FreeEmpty == 0 {
		t.Fatal("FreeEmpty counter not incremented")
	}
	// The resident items stay dequeueable after the close.
	for i := uint64(1); i <= 4; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("drain after close: got (%d,%v) want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained closed ring still returned a value")
	}
}

// TestSCQThresholdRecovery: empty polls drive the threshold negative (the
// fast EMPTY path), and the next deposit must re-arm it so the item is
// reachable.
func TestSCQThresholdRecovery(t *testing.T) {
	q := NewCRQ(scqCfg(2))
	h := NewHandle()
	for i := 0; i < 50; i++ {
		if _, ok := q.Dequeue(h); ok {
			t.Fatal("empty ring returned a value")
		}
	}
	if q.scq.aqThr.Load() >= 0 {
		t.Fatalf("threshold not exhausted by empty polls: %d", q.scq.aqThr.Load())
	}
	if !q.Enqueue(h, 42) {
		t.Fatal("enqueue failed")
	}
	if q.scq.aqThr.Load() != q.scq.thrReset {
		t.Fatalf("threshold not re-armed by deposit: %d want %d", q.scq.aqThr.Load(), q.scq.thrReset)
	}
	if v, ok := q.Dequeue(h); !ok || v != 42 {
		t.Fatalf("deposited item unreachable: (%d,%v)", v, ok)
	}
}

// TestSCQSeedMatchesCAS2Contract: seed + reset are what the list layer's
// recycler drives; the seeded value must be the ring's only element and sit
// at index 0 (the stamp-trace key newRing uses).
func TestSCQSeedAndReset(t *testing.T) {
	q := NewCRQ(scqCfg(2))
	h := NewHandle()
	q.Enqueue(h, 1)
	q.Dequeue(h)
	q.closeRing(h, EvRingClose)

	q.reset()
	if q.Closed() || q.head.Load() != 0 || q.tail.Load() != 0 {
		t.Fatal("reset did not restore the initial state")
	}
	q.seed(99)
	if v, ok := q.Dequeue(h); !ok || v != 99 {
		t.Fatalf("seeded value: got (%d,%v) want (99,true)", v, ok)
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("seeded ring held more than one element")
	}
	// Seeding must leave all n free slots recoverable: fill to capacity.
	for i := uint64(1); i <= 4; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("slot %d unavailable after seed", i)
		}
	}
}

// TestSCQBatchOps exercises the batch entry points' prefix-acceptance and
// linearizable-zero contracts on the SCQ engine.
func TestSCQBatchOps(t *testing.T) {
	q := NewCRQ(scqCfg(2))
	h := NewHandle()
	n, closed := q.EnqueueBatch(h, []uint64{1, 2, 3})
	if n != 3 || closed {
		t.Fatalf("EnqueueBatch = (%d,%v), want (3,false)", n, closed)
	}
	out := make([]uint64, 8)
	if got := q.DequeueBatch(h, out); got != 3 {
		t.Fatalf("DequeueBatch = %d, want 3", got)
	}
	for i, want := range []uint64{1, 2, 3} {
		if out[i] != want {
			t.Fatalf("batch FIFO violated at %d: got %d want %d", i, out[i], want)
		}
	}
	if got := q.DequeueBatch(h, out); got != 0 {
		t.Fatalf("empty DequeueBatch = %d, want 0", got)
	}
	// Overfull batch: prefix accepted, ring closed.
	n, closed = q.EnqueueBatch(h, []uint64{1, 2, 3, 4, 5, 6})
	if n != 4 || !closed {
		t.Fatalf("overfull EnqueueBatch = (%d,%v), want (4,true)", n, closed)
	}
}

// TestSCQListSpill: under the LCRQ list layer a full SCQ ring must spill
// into a fresh ring with nothing lost, reusing the tantrum/append protocol.
func TestSCQListSpill(t *testing.T) {
	cfg := scqCfg(1) // n = 2: every third enqueue spills
	q := NewLCRQ(cfg)
	h := q.NewHandle()
	defer h.Release()
	const total = 100
	for i := uint64(1); i <= total; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("list enqueue %d failed", i)
		}
	}
	for i := uint64(1); i <= total; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("list dequeue: got (%d,%v) want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained list returned a value")
	}
	if h.C.Appends == 0 {
		t.Fatal("no ring was ever appended; spill untested")
	}
}

// TestSCQConcurrentNoLossNoDup: MPMC through the list layer with tiny SCQ
// rings; every produced value must be consumed exactly once.
func TestSCQConcurrentNoLossNoDup(t *testing.T) {
	cfg := scqCfg(2)
	q := NewLCRQ(cfg)
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	var wg sync.WaitGroup
	results := make([][]uint64, consumers)
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perProd; i++ {
				v := uint64(p)<<32 | uint64(i+1)
				for !q.Enqueue(h, v) {
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for {
				v, ok := q.Dequeue(h)
				if ok {
					results[c] = append(results[c], v)
					continue
				}
				select {
				case <-stop:
					if _, ok := q.Dequeue(h); !ok {
						return
					}
				default:
				}
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[uint64]bool, producers*perProd)
	lastPerProd := make(map[uint64]uint64)
	for c := range results {
		for _, v := range results[c] {
			if seen[v] {
				t.Fatalf("duplicate value %#x", v)
			}
			seen[v] = true
			_ = lastPerProd
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("lost items: consumed %d of %d", len(seen), producers*perProd)
	}
	// Per-producer FIFO within each consumer's local stream.
	for c := range results {
		last := make(map[uint64]uint64)
		for _, v := range results[c] {
			p, seq := v>>32, v&0xFFFFFFFF
			if seq <= last[p] {
				t.Fatalf("per-producer order violated in consumer %d: producer %d seq %d after %d", c, p, seq, last[p])
			}
			last[p] = seq
		}
	}
}
