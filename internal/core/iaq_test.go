package core

import (
	"runtime"
	"sync"
	"testing"
)

func TestIAQSequentialFIFO(t *testing.T) {
	q := NewIAQ(64)
	h := NewHandle()
	for i := uint64(0); i < 10; i++ {
		if !q.Enqueue(h, i+1) {
			t.Fatal("capacity exhausted too early")
		}
	}
	for i := uint64(0); i < 10; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i+1 {
			t.Fatalf("got (%d,%v), want %d", v, ok, i+1)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue returned value")
	}
}

func TestIAQCapacityExhaustion(t *testing.T) {
	q := NewIAQ(4)
	h := NewHandle()
	for i := uint64(0); i < 4; i++ {
		if !q.Enqueue(h, i+1) {
			t.Fatal("premature exhaustion")
		}
	}
	if q.Enqueue(h, 99) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	for i := uint64(0); i < 4; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i+1 {
			t.Fatalf("got (%d,%v)", v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("exhausted queue returned value")
	}
	if q.Capacity() != 4 {
		t.Fatalf("Capacity = %d", q.Capacity())
	}
}

func TestIAQEmptyThenReuse(t *testing.T) {
	q := NewIAQ(64)
	h := NewHandle()
	// Empty dequeues burn cells (the algorithm never reuses them) but must
	// not corrupt later traffic.
	for i := 0; i < 5; i++ {
		if _, ok := q.Dequeue(h); ok {
			t.Fatal("empty queue returned value")
		}
	}
	// A dequeuer that raced ahead poisons cells; enqueues skip them.
	for i := uint64(0); i < 10; i++ {
		if !q.Enqueue(h, i+100) {
			t.Fatal("enqueue failed")
		}
	}
	for i := uint64(0); i < 10; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i+100 {
			t.Fatalf("got (%d,%v), want %d", v, ok, i+100)
		}
	}
}

func TestIAQReservedValuesPanic(t *testing.T) {
	q := NewIAQ(8)
	h := NewHandle()
	for _, v := range []uint64{Bottom, top} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("enqueue(%#x) did not panic", v)
				}
			}()
			q.Enqueue(h, v)
		}()
	}
}

func TestIAQBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIAQ(0)
}

func TestIAQConcurrent(t *testing.T) {
	const producers, perProd = 4, 2000
	// Every empty dequeue burns one cell forever — the flaw that makes the
	// Figure-2 algorithm unrealistic — so spinning consumers need enormous
	// headroom. They also Gosched on empty below to bound the burn rate.
	q := NewIAQ(producers*perProd + 1<<21)
	var wg, prodWG sync.WaitGroup
	prodWG.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer prodWG.Done()
			h := NewHandle()
			for i := 0; i < perProd; i++ {
				if !q.Enqueue(h, uint64(p)<<32|uint64(i)|1<<62) {
					t.Error("capacity exhausted")
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { prodWG.Wait(); close(done) }()
	var mu sync.Mutex
	got := map[uint64]int{}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := NewHandle()
			for {
				v, ok := q.Dequeue(h)
				if ok {
					mu.Lock()
					got[v]++
					mu.Unlock()
					continue
				}
				select {
				case <-done:
					if v, ok := q.Dequeue(h); ok {
						mu.Lock()
						got[v]++
						mu.Unlock()
						continue
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	if len(got) != producers*perProd {
		t.Fatalf("got %d distinct values, want %d", len(got), producers*perProd)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}
