package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

// tapCount is a Tap that tallies ring events for assertions.
type tapCount struct {
	counts [NumRingEvents]atomic.Uint64
}

func (t *tapCount) RingEvent(ev RingEvent) { t.counts[ev].Add(1) }

// TestBatchFIFO checks the basic contract: a batch of k values dequeues in
// exactly the order it was enqueued, interchangeably with single ops.
func TestBatchFIFO(t *testing.T) {
	q := NewLCRQ(Config{})
	h := q.NewHandle()
	defer h.Release()

	vs := make([]uint64, 10)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	if n, st := q.EnqueueBatch(h, vs); n != len(vs) || st != EnqOK {
		t.Fatalf("EnqueueBatch = %d,%v, want %d,EnqOK", n, st, len(vs))
	}
	if !q.Enqueue(h, 11) {
		t.Fatal("single enqueue after batch failed")
	}

	out := make([]uint64, 7)
	n := q.DequeueBatch(h, out)
	if n != 7 {
		t.Fatalf("DequeueBatch = %d, want 7", n)
	}
	for i, v := range out[:n] {
		if v != uint64(i)+1 {
			t.Fatalf("out[%d] = %d, want %d (FIFO violated)", i, v, i+1)
		}
	}
	for want := uint64(8); want <= 11; want++ {
		v, ok := q.Dequeue(h)
		if !ok || v != want {
			t.Fatalf("single dequeue = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
}

// TestBatchFAAAmortization is the tentpole's acceptance check: a batched
// enqueue+dequeue of k items must issue roughly 1/k the fetch-and-adds of k
// single operations. The counts are deterministic when uncontended — one
// F&A per single op, one per batch reservation — so the assertion is on
// instrument counter values, not wall-clock.
func TestBatchFAAAmortization(t *testing.T) {
	const k = 64

	single := NewLCRQ(Config{})
	hs := single.NewHandle()
	defer hs.Release()
	for i := 0; i < k; i++ {
		single.Enqueue(hs, uint64(i)+1)
	}
	for i := 0; i < k; i++ {
		if _, ok := single.Dequeue(hs); !ok {
			t.Fatalf("single dequeue %d failed", i)
		}
	}
	singleFAA := hs.C.FAA
	if singleFAA < 2*k {
		t.Fatalf("single-op baseline issued %d F&As, want >= %d", singleFAA, 2*k)
	}

	batched := NewLCRQ(Config{})
	hb := batched.NewHandle()
	defer hb.Release()
	vs := make([]uint64, k)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	if n, st := batched.EnqueueBatch(hb, vs); n != k || st != EnqOK {
		t.Fatalf("EnqueueBatch = %d,%v, want %d,EnqOK", n, st, k)
	}
	out := make([]uint64, k)
	if n := batched.DequeueBatch(hb, out); n != k {
		t.Fatalf("DequeueBatch = %d, want %d", n, k)
	}
	batchFAA := hb.C.FAA

	// One reservation per direction, uncontended: 2 F&As for 2k item ops.
	// Leave a little slack for protocol retries, but insist on an order-of-k
	// amortization, not a constant-factor one.
	if batchFAA > singleFAA/(k/4) {
		t.Fatalf("batched ops issued %d F&As vs %d for singles; want ~1/%d, got worse than 1/%d",
			batchFAA, singleFAA, k, k/4)
	}
	if hb.C.BatchEnqueues != 1 || hb.C.BatchDequeues != 1 {
		t.Fatalf("batch call counters = %d,%d, want 1,1", hb.C.BatchEnqueues, hb.C.BatchDequeues)
	}
}

// TestEnqueueBatchSpill drives a batch far larger than the ring through the
// spill path: the batch must land completely, in order, across several
// freshly appended rings, and the spill counter must see it.
func TestEnqueueBatchSpill(t *testing.T) {
	const k = 40
	q := NewLCRQ(Config{RingOrder: 2}) // 4-cell rings
	h := q.NewHandle()
	defer h.Release()

	vs := make([]uint64, k)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	if n, st := q.EnqueueBatch(h, vs); n != k || st != EnqOK {
		t.Fatalf("EnqueueBatch = %d,%v, want %d,EnqOK", n, st, k)
	}
	if h.C.BatchSpill == 0 {
		t.Fatal("a batch 10x the ring size never spilled into a new ring")
	}
	if h.C.Appends == 0 {
		t.Fatal("spilling batch appended no rings")
	}
	out := make([]uint64, k)
	got := 0
	for got < k {
		n := q.DequeueBatch(h, out[got:])
		if n == 0 {
			t.Fatalf("queue empty after %d of %d items", got, k)
		}
		got += n
	}
	for i := 0; i < k; i++ {
		if out[i] != uint64(i)+1 {
			t.Fatalf("out[%d] = %d, want %d (FIFO violated across spill)", i, out[i], i+1)
		}
	}
}

// TestDequeueBatchEmptyAndPartial checks the two short-return shapes: an
// empty queue answers 0 without issuing any F&A (the reservation is clamped
// to the observed population first), and a batch wider than the population
// returns exactly what is there.
func TestDequeueBatchEmptyAndPartial(t *testing.T) {
	q := NewLCRQ(Config{})
	h := q.NewHandle()
	defer h.Release()

	out := make([]uint64, 8)
	before := h.C.FAA
	if n := q.DequeueBatch(h, out); n != 0 {
		t.Fatalf("DequeueBatch on empty queue = %d, want 0", n)
	}
	if h.C.FAA != before {
		t.Fatalf("empty DequeueBatch issued %d F&As, want 0", h.C.FAA-before)
	}
	if h.C.Empty == 0 {
		t.Fatal("empty batch did not count as an empty dequeue")
	}

	for i := uint64(1); i <= 3; i++ {
		q.Enqueue(h, i)
	}
	if n := q.DequeueBatch(h, out); n != 3 {
		t.Fatalf("DequeueBatch over 3 items = %d, want 3", n)
	}
	for i := uint64(0); i < 3; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	// The queue must remain fully usable after the partial batch.
	if !q.Enqueue(h, 9) {
		t.Fatal("enqueue after partial batch failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 9 {
		t.Fatalf("dequeue after partial batch = %d,%v, want 9,true", v, ok)
	}
}

// TestBatchBoundedPartialAcceptance checks the §9 reserve-then-publish
// invariant under batches: a capacity-bounded queue accepts exactly the
// budget's worth of a too-large batch, refunds the rest, and the exact item
// account never drifts.
func TestBatchBoundedPartialAcceptance(t *testing.T) {
	const cap = 10
	q := NewLCRQ(Config{Capacity: cap})
	h := q.NewHandle()
	defer h.Release()

	vs := make([]uint64, 25)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	n, st := q.EnqueueBatch(h, vs)
	if n != cap || st != EnqFull {
		t.Fatalf("EnqueueBatch over capacity = %d,%v, want %d,EnqFull", n, st, cap)
	}
	if got := q.Items(); got != cap {
		t.Fatalf("Items() = %d, want %d (refund failed)", got, cap)
	}
	if q.CapacityRejects() == 0 {
		t.Fatal("partial acceptance did not count a capacity rejection")
	}

	out := make([]uint64, cap)
	if got := q.DequeueBatch(h, out); got != cap {
		t.Fatalf("DequeueBatch = %d, want %d", got, cap)
	}
	for i := 0; i < cap; i++ {
		if out[i] != uint64(i)+1 {
			t.Fatalf("out[%d] = %d, want %d (rejected tail leaked in)", i, out[i], i+1)
		}
	}
	if got := q.Items(); got != 0 {
		t.Fatalf("Items() after drain = %d, want 0", got)
	}

	// With budget free again the same batch prefix is accepted whole.
	if n, st := q.EnqueueBatch(h, vs[:cap]); n != cap || st != EnqOK {
		t.Fatalf("EnqueueBatch after drain = %d,%v, want %d,EnqOK", n, st, cap)
	}
	if got := q.Items(); got != cap {
		t.Fatalf("Items() = %d, want %d", got, cap)
	}
}

// TestBatchClose checks close semantics: a batch against a closed queue
// reports EnqClosed with nothing accepted, and batches drain a closed
// queue's remaining items normally.
func TestBatchClose(t *testing.T) {
	q := NewLCRQ(Config{})
	h := q.NewHandle()
	defer h.Release()

	if n, st := q.EnqueueBatch(h, []uint64{1, 2, 3}); n != 3 || st != EnqOK {
		t.Fatalf("EnqueueBatch = %d,%v, want 3,EnqOK", n, st)
	}
	q.Close(h)
	if n, st := q.EnqueueBatch(h, []uint64{4, 5}); n != 0 || st != EnqClosed {
		t.Fatalf("EnqueueBatch after close = %d,%v, want 0,EnqClosed", n, st)
	}
	out := make([]uint64, 8)
	if n := q.DequeueBatch(h, out); n != 3 {
		t.Fatalf("DequeueBatch after close = %d, want 3", n)
	}
	for i := uint64(0); i < 3; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	if n := q.DequeueBatch(h, out); n != 0 {
		t.Fatalf("DequeueBatch on drained closed queue = %d, want 0", n)
	}
}

// TestCapacityEpisodeReset is the regression test for the bounded-mode
// episode bug: the full flag used to stay set after consumers drained the
// queue (only a later successful enqueue cleared it), so a fill→drain→fill
// cycle ended by the consumer left the EvCapacityReject tap disarmed and
// FullEpisode stuck at true. Each cycle must emit exactly one
// EvCapacityReject and the episode must end when the drain frees budget.
func TestCapacityEpisodeReset(t *testing.T) {
	t.Run("capacity", func(t *testing.T) {
		const cap = 4
		tap := &tapCount{}
		q := NewLCRQ(Config{Capacity: cap, Tap: tap})
		h := q.NewHandle()
		defer h.Release()

		for cycle := uint64(1); cycle <= 3; cycle++ {
			for i := uint64(0); i < cap; i++ {
				if st := q.EnqueueStatus(h, cycle<<32|i+1); st != EnqOK {
					t.Fatalf("cycle %d: fill %d: status %v", cycle, i, st)
				}
			}
			// Several rejected attempts — one episode, one tap event.
			for i := 0; i < 5; i++ {
				if st := q.EnqueueStatus(h, 999); st != EnqFull {
					t.Fatalf("cycle %d: overfill attempt %d: status %v, want EnqFull", cycle, i, st)
				}
			}
			if !q.FullEpisode() {
				t.Fatalf("cycle %d: no full episode after rejection", cycle)
			}
			if got := tap.counts[EvCapacityReject].Load(); got != cycle {
				t.Fatalf("cycle %d: EvCapacityReject count = %d, want %d (dedup broken)", cycle, got, cycle)
			}
			for i := 0; i < cap; i++ {
				if _, ok := q.Dequeue(h); !ok {
					t.Fatalf("cycle %d: drain %d failed", cycle, i)
				}
			}
			// The consumer ended the episode: budget is free, so the flag
			// must be down even though no producer has succeeded since.
			if q.FullEpisode() {
				t.Fatalf("cycle %d: full episode survived a complete drain", cycle)
			}
		}
	})

	t.Run("max-rings", func(t *testing.T) {
		const maxRings = 2
		tap := &tapCount{}
		q := NewLCRQ(Config{RingOrder: 1, MaxRings: maxRings, Tap: tap})
		h := q.NewHandle()
		defer h.Release()

		// Fill until the ring budget rejects (rings close as they fill, and
		// the chain may not grow past maxRings).
		filled := 0
		for q.EnqueueStatus(h, uint64(filled)+1) == EnqOK {
			filled++
			if filled > 1000 {
				t.Fatal("ring budget never bound")
			}
		}
		if !q.FullEpisode() {
			t.Fatal("no full episode after ring-budget rejection")
		}
		if tap.counts[EvCapacityReject].Load() != 1 {
			t.Fatalf("EvCapacityReject count = %d, want 1", tap.counts[EvCapacityReject].Load())
		}
		// Drain completely: ring retirement frees budget and must end the
		// episode without any producer succeeding.
		for i := 0; i < filled; i++ {
			if _, ok := q.Dequeue(h); !ok {
				t.Fatalf("drain %d of %d failed", i, filled)
			}
		}
		if q.FullEpisode() {
			t.Fatal("full episode survived a complete drain (ring-budget mode)")
		}
	})
}

// TestClusterGateSpins checks the hoisted-clock gate: an operation arriving
// from a foreign cluster spins (counted in GateSpins) until the timeout,
// then claims the ring and completes — and the spin loop consults the clock
// rarely enough that the count is well above the pre-fix one-check-per-spin
// pace would allow in the same wall time.
func TestClusterGateSpins(t *testing.T) {
	q := NewLCRQ(Config{Hierarchical: true, ClusterTimeout: time.Millisecond})
	h0 := q.NewHandle()
	defer h0.Release()
	h0.Cluster = 0
	if !q.Enqueue(h0, 1) { // claims the ring for cluster 0
		t.Fatal("cluster-0 enqueue failed")
	}

	h1 := q.NewHandle()
	defer h1.Release()
	h1.Cluster = 1
	// No cluster-0 thread is active, so the gate must spin out its full
	// timeout and then barge in; the operation still completes.
	if !q.Enqueue(h1, 2) {
		t.Fatal("cluster-1 enqueue failed")
	}
	if h1.C.GateSpins == 0 {
		t.Fatal("foreign-cluster operation recorded no gate spins")
	}
	v, ok := q.Dequeue(h1)
	if !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v, want 1,true", v, ok)
	}
}

// TestBatchLinearizable records genuinely concurrent histories of batch
// operations, decomposes every batch into its constituent single-item ops
// (a batch of k linearizes as k consecutive ops sharing the batch's
// interval), and verifies each history with the exhaustive checker.
func TestBatchLinearizable(t *testing.T) {
	const (
		rounds  = 30
		threads = 3
		batches = 3
	)
	for round := 0; round < rounds; round++ {
		q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4})
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				rng := xrand.New(uint64(round)*1000 + uint64(th) + 1)
				<-start
				for i := 0; i < batches; i++ {
					k := int(rng.Uintn(2)) + 1 // batch of 1 or 2 (checker is exponential)
					if rng.Uint64()%2 == 0 {
						vs := make([]uint64, k)
						for j := range vs {
							vs[j] = uint64(th)<<32 | uint64(i)<<8 | uint64(j) + 1
						}
						inv := rec.Now()
						n, _ := q.EnqueueBatch(h, vs)
						ret := rec.Now()
						for _, v := range vs[:n] {
							rec.Append(th, linearize.Op{
								Kind: linearize.Enq, Value: v,
								Invoke: inv, Return: ret,
							})
						}
					} else {
						out := make([]uint64, k)
						inv := rec.Now()
						n := q.DequeueBatch(h, out)
						ret := rec.Now()
						if n == 0 {
							rec.Append(th, linearize.Op{
								Kind: linearize.Deq, OK: false,
								Invoke: inv, Return: ret,
							})
							continue
						}
						for _, v := range out[:n] {
							rec.Append(th, linearize.Op{
								Kind: linearize.Deq, Value: v, OK: true,
								Invoke: inv, Return: ret,
							})
						}
					}
				}
			}(th)
		}
		close(start)
		wg.Wait()
		hist := rec.History()
		if !linearize.Check(hist) {
			t.Fatalf("round %d: non-linearizable batch history:\n%v", round, hist)
		}
	}
}
