//go:build chaos

package core

import (
	"runtime"
	"testing"

	"lcrq/internal/chaos"
)

// adaptiveTiny is the adaptive analogue of the chaos campaign's tiny-ring
// config: constant segment churn plus the controller's widened thresholds
// and injected pauses.
func adaptiveTinyConfig() Config {
	return Config{
		RingOrder:          1,
		StarvationLimit:    4,
		AdaptiveContention: true,
		// A small spin range keeps the injected pauses from slowing the
		// exhaustive checker's tiny histories to a crawl.
		AdaptSpinMin: 4,
		AdaptSpinMax: 64,
	}
}

// TestLinearizableAdaptiveUnderFaults arms the cell-level faults on an
// adaptive queue: the controller's backoff pauses and widened starvation
// thresholds land inside the retry loops the faults perturb, so this is the
// campaign that would catch an adaptation-introduced linearizability bug.
func TestLinearizableAdaptiveUnderFaults(t *testing.T) {
	for _, sc := range []struct {
		name string
		arm  func()
	}{
		{"enq-cas2-fail", func() { chaos.Set(chaos.EnqCAS2Fail, 0.3) }},
		{"deq-cas2-fail", func() { chaos.Set(chaos.DeqCAS2Fail, 0.3) }},
		{"tantrum", func() { chaos.Set(chaos.Tantrum, 0.2) }},
		{"combined", func() { chaos.EnableAll(0.15) }},
	} {
		t.Run(sc.name, func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			sc.arm()
			chaosCampaign(t, adaptiveTinyConfig(), 40, 3, 6, 9)
		})
	}
}

// TestLinearizableAdaptiveOversubscribed runs the adaptive campaign with
// more workers than processors (GOMAXPROCS clamped to 2, 8 threads): the
// oversubscription regime is where the controller's Gosched-chunked pauses
// actually yield the processor mid-operation, which is exactly the
// scheduling pattern that breaks incorrectly-placed backoff. Histories stay
// tiny — the value is the interleaving diversity, not the op count.
func TestLinearizableAdaptiveOversubscribed(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	chaos.Reset()
	defer chaos.Reset()
	chaos.Set(chaos.EnqCAS2Fail, 0.2)
	chaos.Set(chaos.DeqCAS2Fail, 0.2)
	chaos.Set(chaos.Tantrum, 0.15)
	chaos.Set(chaos.DelayEnq, 0.3)
	chaos.Set(chaos.DelayDeq, 0.3)
	chaosCampaign(t, adaptiveTinyConfig(), 25, 8, 4, 31)
	if chaos.Fired(chaos.Tantrum) == 0 {
		t.Fatal("tantrum point never fired in the oversubscribed campaign")
	}
}
