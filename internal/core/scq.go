package core

import (
	"sync/atomic"

	"lcrq/internal/chaos"
	"lcrq/internal/pad"
)

// SCQ — Nikolaev's Scalable Circular Queue ("A Scalable, Portable, and
// Memory-Efficient Lock-Free FIFO Queue", PAPERS.md) — as an alternative
// ring engine inside CRQ. Where the paper's CRQ keys every cell transition
// on a 128-bit CAS2 (CMPXCHG16B), SCQ packs a whole entry into one 64-bit
// word — ⟨Cycle, IsSafe, Index⟩ — so every transition is a single-word
// CAS/AND and the ring is lock-free on any GOARCH with plain 64-bit
// atomics. See DESIGN.md §16.
//
// Shape: the ring circulates *indices* into a data array, not values. Two
// index queues of 2n entries each serve n data slots: fq holds the free
// slot indices (initialized full with 0..n−1) and aq the allocated ones
// (initialized empty). Enqueue = fq.dequeue → data[idx] = v → aq.enqueue;
// Dequeue = aq.dequeue → v = data[idx] → fq.enqueue. Because at most n
// indices circulate through a 2n-entry ring, an index-queue enqueue never
// observes a full ring — only the data-level "fq came up empty" signals
// fullness, which we translate into the CRQ close-the-ring contract so the
// LCRQ list layer spills into a fresh ring exactly as it does for CAS2
// rings.
//
// Entry encoding (one atomic.Uint64, ring of 2n entries, idxBits = order+1):
//
//	bits [cycleShift..63]  cycle+1  (0 = virgin, "cycle −1", below every real cycle)
//	bit  [idxBits]         unsafe   (1 = unsafe; 0 = safe, so virgin entries are safe)
//	bits [0..idxBits)      ^index   (all-zero = ⊥, so virgin entries are empty)
//
// The three inversions relative to the paper (cycle stored +1, IsSafe
// stored inverted, index stored complemented) make the all-zero word
// exactly the paper's initial entry ⟨−1, safe, ⊥⟩: fresh and reset entry
// arrays are plain zero memory, and the consume transition (set index to ⊥)
// becomes a single atomic AND that clears the index field — the
// fetch_or(⊥) of the paper's Algorithm with the complemented index.
//
// The aq's head and tail are the owning CRQ's head and tail words, so the
// list layer's Depth accounting, closed-bit protocol (tail bit 63), and
// tantrum/close events work on an SCQ ring without modification. The
// dequeue side replaces CRQ's fixState with the paper's Catchup, and the
// livelock-free emptiness verdict comes from the threshold trick: any
// deposit resets the threshold to 3n−1, every unproductive dequeue
// iteration decrements it, and a dequeuer that sees it negative may declare
// EMPTY without scanning — the paper proves the verdict linearizable.
//
// Like the CRQ's cells, index arithmetic assumes ring indices stay below
// 2^63 (the closed bit); the cycle+1 field holds (2^63 >> (order+1)) + 1
// values, which at the minimum order of 1 is still ~2^61 laps.
//
//lcrq:padded
type scqRing struct {
	// fq head/tail/threshold own their cache lines like the CRQ's head and
	// tail; the aq's head/tail live on the owning CRQ (see above) and the
	// two thresholds are the only other contended words.
	fqHead atomic.Uint64
	_      pad.Pad
	fqTail atomic.Uint64
	_      pad.Pad
	fqThr  atomic.Int64
	_      pad.Pad
	aqThr  atomic.Int64
	_      pad.Pad

	// Entry arrays (2n each) and the value slots (n), read-only slice
	// headers after init. Entries are accessed only through sync/atomic;
	// data[idx] is plain, published by the aq entry CAS and reclaimed by
	// the fq entry CAS (each slot index is held by exactly one side at a
	// time, so the entry atomics carry the happens-before edges).
	aqEnt []atomic.Uint64
	fqEnt []atomic.Uint64
	data  []uint64

	// Geometry, read-only after init.
	ringBits   uint   // log2 of the entry count 2n (= order+1)
	slotMask   uint64 // 2n − 1
	idxMask    uint64 // index field mask (width order+1); field 0 = ⊥
	unsafeBit  uint64 // 1 << (order+1)
	cycleShift uint   // order + 2
	rot        uint   // cache-remap rotation (0 = identity on tiny rings)
	thrReset   int64  // 3n − 1 (the paper's threshold)
}

// newSCQRing returns an empty SCQ engine for 2^order data slots with the
// free-index queue filled with 0..n−1.
func newSCQRing(order int) *scqRing {
	n := uint64(1) << order
	s := &scqRing{
		ringBits:   uint(order) + 1,
		slotMask:   2*n - 1,
		idxMask:    2*n - 1,
		unsafeBit:  2 * n,
		cycleShift: uint(order) + 2,
		thrReset:   int64(3*n - 1),
		aqEnt:      make([]atomic.Uint64, 2*n),
		fqEnt:      make([]atomic.Uint64, 2*n),
		data:       make([]uint64, n),
	}
	if s.ringBits > 3 {
		// Bijective rotate-left-by-3 within ringBits: consecutive indices
		// land 8 entries (one cache line of 8-byte words) apart, the
		// paper's cache_remap. Rings of ≤ 8 entries fit a line anyway.
		s.rot = 3
	}
	s.initState()
	return s
}

// initState (re)establishes the empty-queue state: aq empty (threshold −1),
// fq full with every slot index deposited at cycle 0 (threshold armed).
// Requires exclusive access, like CRQ.reset; the owning CRQ resets the aq
// head/tail words itself.
func (s *scqRing) initState() {
	for i := range s.aqEnt {
		s.aqEnt[i].Store(0)
	}
	for i := range s.fqEnt {
		s.fqEnt[i].Store(0)
	}
	n := uint64(len(s.data))
	for i := uint64(0); i < n; i++ {
		s.fqEnt[s.remap(i)].Store(s.mkEntry(1, 0, i))
	}
	s.fqHead.Store(0)
	s.fqTail.Store(n)
	s.fqThr.Store(s.thrReset)
	s.aqThr.Store(-1)
}

// seedValue installs v as the ring's only element, assuming the freshly
// initialized state (NewCRQ or reset). The value sits at aq index 0 —
// matching the CAS2 ring's seed, so newRing's stampTrace(h, 0) pairs with
// the dequeue of index 0 — using slot 0, consumed from the head of the fq.
func (s *scqRing) seedValue(v uint64) {
	s.data[0] = v
	s.fqEnt[s.remap(0)].Store(s.mkEntry(1, 0, s.idxMask)) // slot 0: consumed at fq cycle 0
	s.fqHead.Store(1)
	s.aqEnt[s.remap(0)].Store(s.mkEntry(1, 0, 0)) // deposited at aq cycle 0
	s.aqThr.Store(s.thrReset)
}

// remap spreads consecutive ring indices across cache lines (cache_remap).
//
//lcrq:hotpath
func (s *scqRing) remap(i uint64) uint64 {
	pos := i & s.slotMask
	if s.rot == 0 {
		return pos
	}
	return ((pos << s.rot) | (pos >> (s.ringBits - s.rot))) & s.slotMask
}

// mkEntry builds an entry word from the cycle+1 field value, the unsafe bit
// (0 or s.unsafeBit), and the logical index (s.idxMask = ⊥).
func (s *scqRing) mkEntry(cyc1, unsafeF, idx uint64) uint64 {
	return cyc1<<s.cycleShift | unsafeF | (^idx & s.idxMask)
}

// entCycle extracts the cycle+1 field.
//
//lcrq:hotpath
func (s *scqRing) entCycle(e uint64) uint64 { return e >> s.cycleShift }

// entIdx extracts the logical index; s.idxMask means ⊥.
//
//lcrq:hotpath
func (s *scqRing) entIdx(e uint64) uint64 { return ^e & s.idxMask }

// casEntry performs a single-word entry CAS on behalf of h, counting the
// attempt and any failure, unless the chaos layer forces the attempt to
// fail at injection point p (no CAS is issued then — indistinguishable,
// to the caller, from losing the entry race).
//
//lcrq:hotpath
func casEntry(h *Handle, ent *atomic.Uint64, p chaos.Point, old, new uint64) bool {
	if chaos.Fire(p) {
		h.C.CASFail++
		return false
	}
	h.C.CAS++
	if ent.CompareAndSwap(old, new) {
		return true
	}
	h.C.CASFail++
	return false
}

// catchup drags tail up to head after a dequeuer overran it (the paper's
// Catchup), so the T ≤ H emptiness proof stays available to later
// dequeuers. The loop gives up as soon as tail ≥ head — which includes any
// aq tail with the closed bit set, so a closed ring's frozen tail is never
// rewritten (the closed-bit analogue of fixState's refusal).
func (s *scqRing) catchup(h *Handle, tailW, headW *atomic.Uint64, tail, head uint64) {
	chaos.Delay(chaos.ScqCatchup)
	for tail < head {
		h.C.CAS++
		if tailW.CompareAndSwap(tail, head) {
			return
		}
		h.C.CASFail++
		head = headW.Load()
		tail = tailW.Load()
	}
}

// iqDeq removes the oldest index from an index queue: the aq (head/tail =
// the CRQ's words, masked for the closed bit) when aq is true, the fq
// otherwise. It returns the slot index, the ring index it was consumed at
// (the stamp-trace key for the aq), and ok=false on a linearizable
// emptiness verdict — either the threshold ran dry or tail ≤ head was
// proved and repaired via catchup.
//
//lcrq:hotpath
func (q *CRQ) iqDeq(h *Handle, aq bool) (idx, at uint64, ok bool) {
	s := q.scq
	ent, headW, tailW, thr := s.fqEnt, &s.fqHead, &s.fqTail, &s.fqThr
	if aq {
		ent, headW, tailW, thr = s.aqEnt, &q.head, &q.tail, &s.aqThr
	}
	// The threshold verdict is linearizable for the ring in isolation, but
	// unlike the tail ≤ head proof it does not doom pending deposits: an
	// enqueuer that took its tail F&A before the verdict may still land its
	// deposit after. For an open ring that is fine — the deposit simply
	// linearizes after the EMPTY — but the list layer swings its head past
	// a closed ring on the strength of this verdict (the December-2013
	// retry), and a post-swing deposit would be stranded. So on a closed aq
	// the threshold verdicts are disabled and emptiness must come from the
	// head-climb proof below, which (exactly like CRQ's) guarantees every
	// pending deposit is either visible or doomed. Termination holds
	// without the threshold there: the tail is frozen and every iteration
	// advances head, so the proof is reached in finitely many steps.
	if thr.Load() < 0 && (!aq || q.tail.Load()&closedBit == 0) {
		return 0, 0, false
	}
	for {
		var hd uint64
		if aq {
			hd = q.faaHead(h)
			chaos.Delay(chaos.DelayDeq)
		} else {
			h.C.FAA++
			hd = headW.Add(1) - 1
		}
		j := s.remap(hd)
		hc := (hd >> s.ringBits) + 1
		for {
			e := ent[j].Load()
			ec := s.entCycle(e)
			if ec == hc {
				// Consume: one atomic AND clears the (complemented) index
				// field to ⊥; the returned old word carries the index.
				h.C.TAS++
				old := ent[j].And(^s.idxMask)
				if i := s.entIdx(old); i != s.idxMask {
					return i, hd, true
				}
				// Defensively unreachable (only this hd writes cycle hc
				// here); treat like a skipped entry.
			} else if ec < hc {
				var ne uint64
				if s.entIdx(e) == s.idxMask {
					// Empty-advance ⟨c, s, ⊥⟩ → ⟨Cycle(H), s, ⊥⟩: stop the
					// matching enqueuer of cycle hc from depositing behind us.
					ne = s.mkEntry(hc, e&s.unsafeBit, s.idxMask)
				} else {
					// Mark unsafe ⟨c, 1, i⟩ → ⟨c, 0, i⟩ (paper encoding): the
					// lagging deposit stays readable but unsafe.
					ne = e | s.unsafeBit
				}
				if ne != e {
					if !casEntry(h, &ent[j], chaos.ScqDeqCAS, e, ne) {
						continue // entry changed under us: re-evaluate it
					}
					if s.entIdx(e) == s.idxMask {
						h.C.EmptyTrans++
					} else {
						h.C.UnsafeTrans++
					}
				}
			}
			// ec > hc (we are a lap behind) or the entry was skipped:
			// emptiness check before taking a fresh head.
			t := tailW.Load()
			if t&^closedBit <= hd+1 {
				s.catchup(h, tailW, headW, t, hd+1)
				thr.Add(-1)
				return 0, 0, false
			}
			if thr.Add(-1) <= -1 && (!aq || t&closedBit == 0) {
				h.C.ThresholdEmpty++
				return 0, 0, false
			}
			break
		}
		h.C.CellRetries++
		if q.cfg.AdaptiveContention {
			h.adaptFail()
		}
	}
}

// fqEnqueue returns slot index idx to the free queue. It cannot fail: at
// most n indices circulate through the 2n-entry ring, so a usable entry is
// always reachable (the paper's "index queue never fills").
//
//lcrq:hotpath
func (s *scqRing) fqEnqueue(h *Handle, idx uint64) {
	for {
		h.C.FAA++
		t := s.fqTail.Add(1) - 1
		j := s.remap(t)
		tc := (t >> s.ringBits) + 1
		for {
			e := s.fqEnt[j].Load()
			if s.entCycle(e) < tc && s.entIdx(e) == s.idxMask &&
				(e&s.unsafeBit == 0 || s.fqHead.Load() <= t) {
				if casEntry(h, &s.fqEnt[j], chaos.ScqEnqCAS, e, s.mkEntry(tc, 0, idx)) {
					chaos.Delay(chaos.ScqThreshold)
					if s.fqThr.Load() != s.thrReset {
						s.fqThr.Store(s.thrReset)
					}
					return
				}
				continue // CAS lost: re-read this entry, same t
			}
			break // entry unusable at this cycle: take a fresh tail
		}
		h.C.CellRetries++
	}
}

// aqEnqueue deposits slot index idx into the allocated queue at a fresh
// tail index, honoring the CRQ contract: false means the ring is (or was
// just) closed — by a concurrent closer, by chaos, or by this thread's own
// starvation tantrum — and the caller must refund idx to the fq.
//
//lcrq:hotpath
func (q *CRQ) aqEnqueue(h *Handle, idx uint64) bool {
	s := q.scq
	tries := 0
	for {
		// Forced starvation: unlike the CAS2 ring, whose full-ring check
		// funnels every contended attempt through the tantrum block, SCQ
		// detects fullness before reaching this loop — so the chaos tantrum
		// is evaluated per deposit attempt to keep the fault reachable.
		if chaos.Fire(chaos.Tantrum) {
			q.closeRing(h, EvRingTantrum)
			return false
		}
		t := q.faaTail(h)
		if t&closedBit != 0 {
			return false
		}
		j := s.remap(t)
		tc := (t >> s.ringBits) + 1
		for {
			e := s.aqEnt[j].Load()
			if s.entCycle(e) < tc && s.entIdx(e) == s.idxMask &&
				(e&s.unsafeBit == 0 || q.head.Load() <= t) {
				chaos.Delay(chaos.DelayEnq)
				// Publish the armed trace stamp before the deposit CAS,
				// keyed by the aq index t (see CRQ.Enqueue for ordering).
				if h.traceArmed && q.stamps != nil {
					q.stampTrace(h, t)
				}
				if casEntry(h, &s.aqEnt[j], chaos.ScqEnqCAS, e, s.mkEntry(tc, 0, idx)) {
					if h.traceArmed {
						h.completeEnqTrace()
					}
					// Re-arm the threshold: the deposit is visible, so
					// dequeuers get their full 3n−1 iteration budget back.
					chaos.Delay(chaos.ScqThreshold)
					if s.aqThr.Load() != s.thrReset {
						s.aqThr.Store(s.thrReset)
					}
					return true
				}
				continue
			}
			break
		}
		tries++
		limit := q.cfg.StarvationLimit
		if q.cfg.AdaptiveContention {
			limit = h.Ctl.StarveLimit(limit)
		}
		if tries >= limit {
			q.closeRing(h, EvRingTantrum)
			return false
		}
		h.C.CellRetries++
		if q.cfg.AdaptiveContention {
			h.adaptFail()
		}
	}
}

// scqEnqueue is CRQ.Enqueue for the SCQ engine: false means the ring is
// closed (full, tantrum, or concurrently), and v was not enqueued.
//
//lcrq:hotpath
func (q *CRQ) scqEnqueue(h *Handle, v uint64) bool {
	s := q.scq
	// Forced close: behave as if this attempt had observed a full ring.
	if chaos.Fire(chaos.RingClose) {
		q.closeRing(h, EvRingClose)
		return false
	}
	if q.tail.Load()&closedBit != 0 {
		return false // already closed: don't burn a free slot
	}
	idx, _, ok := q.iqDeq(h, false)
	if !ok {
		// Free queue empty: every data slot is in use (or its threshold ran
		// dry under contention) — the ring is full by the only test SCQ
		// has, so close it exactly as the CRQ does on t − head ≥ R.
		h.C.FreeEmpty++
		q.closeRing(h, EvRingClose)
		return false
	}
	s.data[idx] = v
	if !q.aqEnqueue(h, idx) {
		// Lost to a close between the slot grab and the deposit: refund
		// the slot so no index leaks, then report closed.
		s.fqEnqueue(h, idx)
		return false
	}
	if q.cfg.AdaptiveContention {
		h.adaptOK()
	}
	return true
}

// scqDequeue is CRQ.Dequeue for the SCQ engine.
//
//lcrq:hotpath
func (q *CRQ) scqDequeue(h *Handle) (uint64, bool) {
	s := q.scq
	idx, at, ok := q.iqDeq(h, true)
	if !ok {
		return Bottom, false
	}
	v := s.data[idx]
	if q.stamps != nil {
		q.checkStamp(h, at, 0)
	}
	s.fqEnqueue(h, idx)
	if q.cfg.AdaptiveContention {
		h.adaptOK()
	}
	return v, true
}

// scqEnqueueBatch accepts a prefix of vs one deposit at a time: SCQ's
// indices circulate through the fq, so there is no block tail reservation
// to amortize (the batch F&A win is CAS2-ring-specific). The contract
// matches EnqueueBatch: on return either every value landed or the ring is
// closed.
func (q *CRQ) scqEnqueueBatch(h *Handle, vs []uint64) (n int, closed bool) {
	chaos.Delay(chaos.BatchEnqReserve)
	for _, v := range vs {
		if !q.scqEnqueue(h, v) {
			return n, true
		}
		n++
	}
	return n, false
}

// scqDequeueBatch fills a prefix of out. A 0 return comes only from the
// first iqDeq's emptiness verdict, which is linearizable (threshold or
// tail ≤ head proof), preserving the DequeueBatch contract.
func (q *CRQ) scqDequeueBatch(h *Handle, out []uint64) int {
	chaos.Delay(chaos.BatchDeqReserve)
	s := q.scq
	n := 0
	for n < len(out) {
		idx, at, ok := q.iqDeq(h, true)
		if !ok {
			break
		}
		out[n] = s.data[idx]
		if q.stamps != nil {
			q.checkStamp(h, at, n)
		}
		s.fqEnqueue(h, idx)
		if q.cfg.AdaptiveContention {
			h.adaptOK()
		}
		n++
	}
	return n
}

// Portable reports whether this ring runs the SCQ engine (single-word
// atomics) rather than the CAS2 cells.
func (q *CRQ) Portable() bool { return q.scq != nil }
