package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newSmallLCRQ(order int) *LCRQ {
	return NewLCRQ(Config{RingOrder: order, NoPadding: true})
}

func TestLCRQSequentialFIFO(t *testing.T) {
	q := newSmallLCRQ(4)
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(0); i < 100; i++ {
		q.Enqueue(h, i+1)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i+1 {
			t.Fatalf("dequeue %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue returned a value")
	}
}

// TestLCRQUnbounded exceeds a tiny ring many times over, forcing ring
// appends, head swings, and recycling.
func TestLCRQUnbounded(t *testing.T) {
	q := newSmallLCRQ(2) // R = 4
	h := q.NewHandle()
	defer h.Release()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		q.Enqueue(h, i+1)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i+1 {
			t.Fatalf("dequeue %d = (%d,%v)", i, v, ok)
		}
	}
	if h.C.Appends == 0 {
		t.Fatal("expected ring appends with R=4 and 1000 items")
	}
}

func TestLCRQAlternating(t *testing.T) {
	q := newSmallLCRQ(3)
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(0); i < 500; i++ {
		q.Enqueue(h, i+1)
		v, ok := q.Dequeue(h)
		if !ok || v != i+1 {
			t.Fatalf("iter %d: (%d,%v)", i, v, ok)
		}
		if _, ok := q.Dequeue(h); ok {
			t.Fatalf("iter %d: queue should be empty", i)
		}
	}
}

func TestLCRQEnqueueBottomPanics(t *testing.T) {
	q := newSmallLCRQ(3)
	h := q.NewHandle()
	defer h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Enqueue(h, Bottom)
}

func TestLCRQModelEquivalence(t *testing.T) {
	f := func(ops []byte) bool {
		q := newSmallLCRQ(2)
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%3 != 0 { // bias toward enqueues to grow the list
				q.Enqueue(h, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		for _, want := range model {
			if v, ok := q.Dequeue(h); !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue(h)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLCRQDifferentialIAQ drives LCRQ and the Figure-2 queue with the same
// sequential op stream; they must agree exactly.
func TestLCRQDifferentialIAQ(t *testing.T) {
	f := func(ops []byte) bool {
		lq := newSmallLCRQ(2)
		lh := lq.NewHandle()
		defer lh.Release()
		iq := NewIAQ(4096)
		ih := NewHandle()
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				if !iq.Enqueue(ih, next) {
					break // IAQ capacity exhausted; stop comparing
				}
				lq.Enqueue(lh, next)
				next++
			} else {
				lv, lok := lq.Dequeue(lh)
				iv, iok := iq.Dequeue(ih)
				if lok != iok || (lok && lv != iv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func lcrqStress(t *testing.T, cfg Config, producers, consumers, perProd int) {
	t.Helper()
	q := NewLCRQ(cfg)
	var wg, prodWG sync.WaitGroup
	prodWG.Add(producers)
	seen := make([][]uint64, consumers)
	var dequeued atomic.Int64
	total := int64(producers * perProd)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer prodWG.Done()
			h := q.NewHandle()
			defer h.Release()
			h.Cluster = int64(p % 2)
			for i := 0; i < perProd; i++ {
				q.Enqueue(h, uint64(p)<<32|uint64(i)|1<<63)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			h.Cluster = int64(c % 2)
			for dequeued.Load() < total {
				if v, ok := q.Dequeue(h); ok {
					seen[c] = append(seen[c], v&^(1<<63))
					dequeued.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	got := map[uint64]int{}
	n := 0
	for _, s := range seen {
		for _, v := range s {
			got[v]++
			n++
		}
	}
	if int64(n) != total {
		t.Fatalf("dequeued %d, want %d", n, total)
	}
	for v, k := range got {
		if k != 1 {
			t.Fatalf("value %#x dequeued %d times", v, k)
		}
	}
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, p, i, prev)
			}
			last[p] = i
		}
	}
}

func TestLCRQConcurrentTinyRing(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 2, NoPadding: true}, 4, 4, 3000)
}

func TestLCRQConcurrentBigRing(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 12, NoPadding: true}, 4, 4, 5000)
}

func TestLCRQConcurrentCASVariant(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 6, NoPadding: true, CASLoopFAA: true}, 3, 3, 2000)
}

func TestLCRQConcurrentHierarchical(t *testing.T) {
	lcrqStress(t, Config{
		RingOrder:      4,
		NoPadding:      true,
		Hierarchical:   true,
		ClusterTimeout: 50 * time.Microsecond,
	}, 4, 4, 1500)
}

func TestLCRQConcurrentNoRecycle(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 3, NoPadding: true, NoRecycle: true}, 4, 4, 2000)
}

func TestLCRQConcurrentNoSpinWait(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 4, NoPadding: true, SpinWait: -1}, 4, 4, 2000)
}

func TestLCRQConcurrentNoHazard(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 2, NoPadding: true, NoHazard: true}, 4, 4, 2000)
}

func TestLCRQConcurrentEpoch(t *testing.T) {
	lcrqStress(t, Config{RingOrder: 2, NoPadding: true, Reclamation: ReclaimEpoch}, 4, 4, 2000)
}

func TestLCRQEpochRecycles(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 1, NoPadding: true, Reclamation: ReclaimEpoch})
	h := q.NewHandle()
	defer h.Release()
	next, expect := uint64(1), uint64(1)
	for i := 0; i < 2000; i++ {
		for j := 0; j < 5; j++ {
			q.Enqueue(h, next)
			next++
		}
		for j := 0; j < 5; j++ {
			v, ok := q.Dequeue(h)
			if !ok || v != expect {
				t.Fatalf("batch %d: got (%d,%v), want %d", i, v, ok, expect)
			}
			expect++
		}
	}
	if h.C.Appends == 0 {
		t.Fatal("workload never appended a ring")
	}
	if h.C.Recycled == 0 {
		t.Fatal("epoch mode never recycled a ring")
	}
}

func TestReclamationModeNormalization(t *testing.T) {
	if (Config{NoHazard: true}).normalized().Reclamation != ReclaimGC {
		t.Fatal("NoHazard did not force ReclaimGC")
	}
	c := Config{Reclamation: ReclaimGC}.normalized()
	if !c.NoRecycle || !c.NoHazard {
		t.Fatal("ReclaimGC did not imply NoRecycle/NoHazard")
	}
	if ReclaimHazard.String() != "hazard" || ReclaimEpoch.String() != "epoch" || ReclaimGC.String() != "gc" {
		t.Fatal("mode names wrong")
	}
}

func TestNoHazardImpliesNoRecycle(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 1, NoHazard: true})
	if !q.Config().NoRecycle {
		t.Fatal("NoHazard must imply NoRecycle")
	}
	h := q.NewHandle()
	defer h.Release()
	// Churn rings; nothing may be recycled and nothing may crash.
	for i := uint64(1); i <= 500; i++ {
		for j := uint64(0); j < 5; j++ {
			q.Enqueue(h, i*10+j+1)
		}
		for j := uint64(0); j < 5; j++ {
			if _, ok := q.Dequeue(h); !ok {
				t.Fatal("lost value")
			}
		}
	}
	if h.C.Recycled != 0 {
		t.Fatal("NoHazard queue recycled a ring")
	}
	if h.C.Appends == 0 {
		t.Fatal("workload should have appended rings")
	}
}

// TestLCRQEnqueueDequeuePairs mimics the paper's benchmark loop shape.
func TestLCRQEnqueueDequeuePairs(t *testing.T) {
	q := newSmallLCRQ(6)
	var wg sync.WaitGroup
	workers := 8
	var balance atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < 3000; i++ {
				q.Enqueue(h, uint64(w*1_000_000+i)+1)
				balance.Add(1)
				if _, ok := q.Dequeue(h); ok {
					balance.Add(-1)
				}
			}
		}(w)
	}
	wg.Wait()
	// Whatever remains in the queue must equal the enqueue/dequeue balance.
	h := q.NewHandle()
	defer h.Release()
	rest := int64(0)
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
		rest++
	}
	if rest != balance.Load() {
		t.Fatalf("queue had %d leftovers, balance says %d", rest, balance.Load())
	}
}

func TestLCRQRecyclingReusesRings(t *testing.T) {
	// R = 2 and batches of 5 force each batch to close rings and append new
	// ones; draining swings the head and retires the old rings, which the
	// recycler then hands back to later appends.
	q := NewLCRQ(Config{RingOrder: 1, NoPadding: true})
	h := q.NewHandle()
	defer h.Release()
	next, expect := uint64(1), uint64(1)
	for i := 0; i < 200; i++ {
		for j := 0; j < 5; j++ {
			q.Enqueue(h, next)
			next++
		}
		for j := 0; j < 5; j++ {
			v, ok := q.Dequeue(h)
			if !ok || v != expect {
				t.Fatalf("batch %d: got (%d,%v), want %d", i, v, ok, expect)
			}
			expect++
		}
	}
	if h.C.Appends == 0 {
		t.Fatal("workload never appended a ring")
	}
	if h.C.Recycled == 0 {
		t.Fatal("expected some rings to be recycled")
	}
}

func TestLCRQHandleRelease(t *testing.T) {
	q := newSmallLCRQ(3)
	h := q.NewHandle()
	q.Enqueue(h, 1)
	h.Release()
	h2 := q.NewHandle()
	defer h2.Release()
	if v, ok := q.Dequeue(h2); !ok || v != 1 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	// Releasing a detached handle must not panic.
	NewHandle().Release()
}

func TestLCRQConfigAccessor(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 7})
	if q.Config().RingOrder != 7 {
		t.Fatal("config not retained")
	}
	if q.Config().StarvationLimit != DefaultStarvationLimit {
		t.Fatal("config not normalized")
	}
}
