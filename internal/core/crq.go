package core

import (
	"sync/atomic"

	"lcrq/internal/atomic128"
	"lcrq/internal/chaos"
	"lcrq/internal/pad"
)

// Physical cell encoding (see package documentation):
//
//	lo word: bit 63 = unsafe flag (0 = safe), bits 0..62 = index
//	hi word: ^value; physical 0 encodes ⊥
const (
	unsafeFlag = uint64(1) << 63
	idxMask    = unsafeFlag - 1
	// closedBit is the most significant bit of the CRQ tail (Figure 3a).
	closedBit = uint64(1) << 63
)

// CRQ is the concurrent ring queue of Figure 3: a bounded, linearizable
// tantrum queue. Enqueue returns false once the ring has been closed; LCRQ
// builds an unbounded queue by chaining CRQs.
//
// A CRQ must be created with NewCRQ. The padcheck analyzer verifies the
// paper's layout: head, tail, next, and cluster each own a false-sharing
// range (§4: the F&A-over-CAS win evaporates if these words share lines).
//
//lcrq:padded
//lcrq:publish
type CRQ struct {
	head atomic.Uint64
	_    pad.Pad
	tail atomic.Uint64 // bit 63 = CLOSED
	_    pad.Pad
	next atomic.Pointer[CRQ]
	_    pad.Pad
	// cluster is the LCRQ+H batching hint: the cluster whose operations
	// currently "own" the ring.
	cluster atomic.Int64
	_       pad.Pad

	// The ring. Cell i lives at slab[(i&mask)<<strideShift]; strideShift is
	// 3 for padded cells (8 × 16 B = one false-sharing range) and 0 for
	// packed cells.
	slab        []atomic128.Uint128
	mask        uint64
	size        uint64
	strideShift uint

	// stamps is the parallel item-trace array (nil unless tracing is
	// configured): slot t&mask carries the trace stamp of the enqueuer that
	// claimed index t, matched by tag. Read-only after init, like slab.
	stamps []traceStamp

	// scq is the portable single-word ring engine (nil for the CAS2
	// layout): when set, head/tail above serve as the SCQ's allocated-index
	// queue and slab is not allocated. Selected by Config.Ring; see scq.go.
	scq *scqRing

	cfg Config
}

// NewCRQ returns an empty ring configured by cfg.
func NewCRQ(cfg Config) *CRQ {
	cfg = cfg.normalized()
	q := &CRQ{cfg: cfg}
	q.size = uint64(1) << cfg.RingOrder
	q.mask = q.size - 1
	if cfg.NoPadding {
		q.strideShift = 0
	} else {
		q.strideShift = 3
	}
	if cfg.Ring == RingSCQ {
		// Portable engine: 2×2n single-word entries + n value slots stand
		// in for the CAS2 slab (see scq.go); cache_remap replaces stride
		// padding, so NoPadding is meaningless here.
		q.scq = newSCQRing(cfg.RingOrder)
	} else {
		// The all-zero cell is the initial state (safe, index 0, ⊥), so the
		// freshly zeroed slab needs no initialization loop.
		q.slab = atomic128.AlignedUint128s(int(q.size) << q.strideShift)
	}
	if cfg.TraceSampleN != 0 {
		// Zero tags mean "no stamp", so the fresh array needs no init.
		q.stamps = make([]traceStamp, q.size)
	}
	return q
}

//lcrq:hotpath
func (q *CRQ) cell(i uint64) *atomic128.Uint128 {
	return &q.slab[(i&q.mask)<<q.strideShift]
}

// reset returns a drained ring to its initial empty state so it can be
// reused. It must only be called when no other thread can access the ring
// (i.e. after hazard-pointer reclamation).
func (q *CRQ) reset() {
	clear(q.slab)
	if q.scq != nil {
		q.scq.initState()
	}
	// Clearing only the tags suffices to invalidate every stamp: a recycled
	// ring restarts at index 0, and stale tags from the previous life would
	// otherwise alias indices of the new one exactly (tag == idx+1 repeats
	// every lap).
	for i := range q.stamps {
		q.stamps[i].tag.Store(0)
	}
	q.head.Store(0)
	q.tail.Store(0)
	q.next.Store(nil)
	q.cluster.Store(0)
}

// seed installs v as the ring's only element. Like reset it requires
// exclusive access; LCRQ uses it to build "a new CRQ initialized to contain
// x" (Figure 5c, line 162).
func (q *CRQ) seed(v uint64) {
	if q.scq != nil {
		q.scq.seedValue(v)
		q.tail.Store(1)
		return
	}
	// Full-cell store: one stripe-locked critical section on emulated
	// builds, two plain atomic halves on native (exclusive access either way).
	q.cell(0).Store(0, ^v) // safe, index 0, value v
	q.tail.Store(1)
}

// Size returns the ring capacity R.
func (q *CRQ) Size() int { return int(q.size) }

// Closed reports whether the ring has been closed to further enqueues.
func (q *CRQ) Closed() bool { return q.tail.Load()&closedBit != 0 }

// close sets the CLOSED bit with a test-and-set (the paper uses LOCK BTS;
// an atomic OR of a single bit is the identical x86 idiom). ev attributes
// the close in the lifecycle trace (full/helping close vs. tantrum); the
// event fires only when this call performed the transition, so concurrent
// closers do not flood the trace.
//
//lcrq:hotpath
func (q *CRQ) closeRing(h *Handle, ev RingEvent) {
	h.C.TAS++
	h.C.Closes++
	was := q.tail.Or(closedBit)
	if was&closedBit == 0 && q.cfg.Tap != nil {
		q.cfg.Tap.RingEvent(ev)
	}
}

// cas2 performs a cell CAS2 on behalf of h, counting the attempt and any
// failure, unless the chaos layer forces the attempt to fail at injection
// point p (in which case no hardware CAS is issued — indistinguishable, to
// the caller, from losing the cell race to another thread).
//
//lcrq:hotpath
func cas2(h *Handle, cell *atomic128.Uint128, p chaos.Point, oldLo, oldHi, newLo, newHi uint64) bool {
	if chaos.Fire(p) {
		h.C.CAS2Fail++
		return false
	}
	h.C.CAS2++
	if cell.CompareAndSwap(oldLo, oldHi, newLo, newHi) {
		return true
	}
	h.C.CAS2Fail++
	return false
}

// faaHead performs F&A(&head, 1), or its CAS-loop emulation in the
// LCRQ-CAS variant.
//
//lcrq:hotpath
func (q *CRQ) faaHead(h *Handle) uint64 {
	if q.cfg.CASLoopFAA {
		for {
			old := q.head.Load()
			h.C.CAS++
			if q.head.CompareAndSwap(old, old+1) {
				return old
			}
			h.C.CASFail++
		}
	}
	h.C.FAA++
	return q.head.Add(1) - 1
}

// faaTail performs F&A(&tail, 1) on all 64 bits (the closed bit rides
// along, exactly as in Figure 3d line 84).
//
//lcrq:hotpath
func (q *CRQ) faaTail(h *Handle) uint64 {
	if q.cfg.CASLoopFAA {
		for {
			old := q.tail.Load()
			h.C.CAS++
			if q.tail.CompareAndSwap(old, old+1) {
				return old
			}
			h.C.CASFail++
		}
	}
	h.C.FAA++
	return q.tail.Add(1) - 1
}

// faaHeadN reserves k consecutive dequeue indices with one F&A(&head, k)
// (or its CAS-loop emulation), returning the first. This is the batching
// analogue of faaHead: the hot-line RMW is paid once per batch.
//
//lcrq:hotpath
func (q *CRQ) faaHeadN(h *Handle, k uint64) uint64 {
	if q.cfg.CASLoopFAA {
		for {
			old := q.head.Load()
			h.C.CAS++
			if q.head.CompareAndSwap(old, old+k) {
				return old
			}
			h.C.CASFail++
		}
	}
	h.C.FAA++
	return q.head.Add(k) - k
}

// faaTailN reserves k consecutive enqueue indices with one F&A(&tail, k),
// returning the first. As with faaTail the closed bit rides along: a
// reservation on a closed ring returns it set and deposits nothing.
//
//lcrq:hotpath
func (q *CRQ) faaTailN(h *Handle, k uint64) uint64 {
	if q.cfg.CASLoopFAA {
		for {
			old := q.tail.Load()
			h.C.CAS++
			if q.tail.CompareAndSwap(old, old+k) {
				return old
			}
			h.C.CASFail++
		}
	}
	h.C.FAA++
	return q.tail.Add(k) - k
}

// Enqueue attempts to append v to the ring. It returns false if the ring is
// (or becomes) CLOSED, in which case v was not enqueued. v must not be
// Bottom.
//
// This is Figure 3d. The enqueue transition (s,k,⊥) → (1,t,v) is attempted
// when the cell is empty, its index does not exceed ours, and either the
// cell is safe or the matching dequeuer provably has not started
// (head ≤ t). On failure the ring is closed if it appears full
// (t − head ≥ R) or the thread is starving.
//
//lcrq:hotpath
func (q *CRQ) Enqueue(h *Handle, v uint64) bool {
	if v == Bottom {
		panic("core: enqueue of reserved value Bottom")
	}
	if q.scq != nil {
		return q.scqEnqueue(h, v)
	}
	tries := 0
	for {
		// Forced close: behave as if this attempt had observed a full ring.
		if chaos.Fire(chaos.RingClose) {
			q.closeRing(h, EvRingClose)
			return false
		}
		tc := q.faaTail(h)
		if tc&closedBit != 0 {
			return false
		}
		t := tc
		cell := q.cell(t)

		hi := cell.LoadHi()
		lo := cell.LoadLo()
		idx := lo & idxMask
		safe := lo&unsafeFlag == 0

		if hi == 0 { // value is ⊥
			if idx <= t && (safe || q.head.Load() <= t) {
				chaos.Delay(chaos.DelayEnq)
				// Publish the armed trace stamp before the deposit CAS: a
				// dequeuer only reads the stamp after claiming the value, so
				// the CAS success orders the stamp ahead of every reader.
				if h.traceArmed && q.stamps != nil {
					q.stampTrace(h, t)
				}
				// (s, idx, ⊥) → (1, t, v): new lo = t with unsafe flag
				// cleared, new hi = ^v.
				if cas2(h, cell, chaos.EnqCAS2Fail, lo, 0, t, ^v) {
					if h.traceArmed {
						h.completeEnqTrace()
					}
					if q.cfg.AdaptiveContention {
						h.adaptOK()
					}
					return true
				}
			}
		}

		hd := q.head.Load()
		tries++
		// The starvation threshold is the fixed limit by default; with the
		// adaptive controller armed it widens with the handle's measured
		// contention and the watchdog's boost, so a tantrum storm damps
		// instead of cascading into ring churn. The chaos-forced tantrum
		// targets whatever the effective limit is, widened included.
		limit := q.cfg.StarvationLimit
		if q.cfg.AdaptiveContention {
			limit = h.Ctl.StarveLimit(limit)
		}
		if chaos.Fire(chaos.Tantrum) {
			tries = limit // forced starvation: throw the tantrum now
		}
		if full := int64(t-hd) >= int64(q.size); full || tries >= limit {
			ev := EvRingTantrum
			if full {
				ev = EvRingClose
			}
			q.closeRing(h, ev)
			return false
		}
		h.C.CellRetries++
		if q.cfg.AdaptiveContention {
			h.adaptFail()
		}
	}
}

// Dequeue removes and returns the oldest value in the ring. ok is false if
// the ring is empty (head has caught up with tail).
//
// This is Figure 3b plus the bounded-wait optimization of §4.1.1: before
// poisoning a cell with an empty transition, the dequeuer gives an active
// matching enqueuer (evidenced by tail > h) a bounded spin to deposit its
// value, avoiding a pointless retry by both parties.
func (q *CRQ) Dequeue(h *Handle) (v uint64, ok bool) {
	if q.scq != nil {
		return q.scqDequeue(h)
	}
	for {
		hIdx := q.faaHead(h)
		chaos.Delay(chaos.DelayDeq)
		cell := q.cell(hIdx)
		spins := q.cfg.SpinWait

	cellLoop:
		for {
			hi := cell.LoadHi()
			lo := cell.LoadLo()
			idx := lo & idxMask
			unsafeBit := lo & unsafeFlag

			if idx > hIdx {
				break cellLoop // overtaken: someone moved the cell past us
			}
			if hi != 0 { // cell holds a value
				if idx == hIdx {
					// Dequeue transition (s, h, v) → (s, h+R, ⊥).
					if cas2(h, cell, chaos.DeqCAS2Fail, lo, hi, unsafeBit|(hIdx+q.size), 0) {
						if q.stamps != nil {
							q.checkStamp(h, hIdx, 0)
						}
						if q.cfg.AdaptiveContention {
							h.adaptOK()
						}
						return ^hi, true
					}
				} else {
					// We arrived a lap early: unsafe transition
					// (s, k, v) → (0, k, v).
					if cas2(h, cell, chaos.DeqCAS2Fail, lo, hi, unsafeFlag|idx, hi) {
						h.C.UnsafeTrans++
						break cellLoop
					}
				}
			} else {
				// Empty cell. If the matching enqueuer is active (its F&A
				// has been handed out: tail > h), give it a bounded chance.
				if spins > 0 && q.tail.Load()&^closedBit > hIdx {
					spins--
					h.C.SpinWaits++
					continue cellLoop
				}
				// Empty transition (s, k, ⊥) → (s, h+R, ⊥).
				if cas2(h, cell, chaos.DeqCAS2Fail, lo, 0, unsafeBit|(hIdx+q.size), 0) {
					h.C.EmptyTrans++
					break cellLoop
				}
			}
		}

		// Failed to dequeue at hIdx: return EMPTY if the ring has no more
		// items, otherwise take a fresh index.
		t := q.tail.Load() &^ closedBit
		if t <= hIdx+1 {
			q.fixState(h)
			return Bottom, false
		}
		h.C.CellRetries++
		if q.cfg.AdaptiveContention {
			h.adaptFail()
		}
	}
}

// EnqueueBatch appends the values of vs, in order, reserving consecutive
// ring indices in blocks with a single tail F&A per block instead of one per
// value. Each reserved index then runs the ordinary per-cell enqueue
// transition of Figure 3d independently, so the batch changes only how
// indices are claimed, not how cells synchronize: an index whose cell
// attempt fails is simply abandoned — exactly the state a failed single
// enqueue attempt leaves behind, which dequeuers already poison past — and
// its value moves on to the next reserved index.
//
// It returns how many values were accepted (always a prefix of vs) and
// whether the ring is closed. On return either every value landed or the
// ring is closed, so the LCRQ layer spills the remainder into a fresh ring;
// progress is guaranteed because every reserved index that fails its cell
// either advances the value cursor, closes the ring, or raises the shared
// starvation count toward the tantrum.
//
//lcrq:hotpath
func (q *CRQ) EnqueueBatch(h *Handle, vs []uint64) (n int, closed bool) {
	for _, v := range vs {
		if v == Bottom {
			panic("core: enqueue of reserved value Bottom")
		}
	}
	k := uint64(len(vs))
	if k == 0 {
		return 0, q.Closed()
	}
	if q.scq != nil {
		return q.scqEnqueueBatch(h, vs)
	}
	if k > q.size {
		// A longer reservation would lap the ring onto itself (index t and
		// t+R share a cell); the caller re-invokes for the remainder.
		k = q.size
	}
	tries := 0
	for uint64(n) < k {
		// Forced close: behave as if the reservation had observed a full ring.
		if chaos.Fire(chaos.RingClose) {
			q.closeRing(h, EvRingClose)
			return n, true
		}
		rem := k - uint64(n)
		base := q.faaTailN(h, rem)
		if base&closedBit != 0 {
			return n, true
		}
		chaos.Delay(chaos.BatchEnqReserve)
		for i := uint64(0); i < rem; i++ {
			t := base + i
			cell := q.cell(t)
			hi := cell.LoadHi()
			lo := cell.LoadLo()
			idx := lo & idxMask
			safe := lo&unsafeFlag == 0
			if hi == 0 && idx <= t && (safe || q.head.Load() <= t) {
				chaos.Delay(chaos.DelayEnq)
				// One armed trace per operation: the first value deposited
				// after arming carries the stamp (see Enqueue for ordering).
				if h.traceArmed && q.stamps != nil {
					q.stampTrace(h, t)
				}
				if cas2(h, cell, chaos.EnqCAS2Fail, lo, 0, t, ^vs[n]) {
					if h.traceArmed {
						h.completeEnqTrace()
					}
					if q.cfg.AdaptiveContention {
						h.adaptOK()
					}
					n++
					continue
				}
			}
			// Lost the cell: abandon index t (a dequeuer empty-transitions
			// past it, as after any failed single attempt) and fall into the
			// same full/starvation policy as the single-op path, widened by
			// the adaptive controller when armed.
			hd := q.head.Load()
			tries++
			limit := q.cfg.StarvationLimit
			if q.cfg.AdaptiveContention {
				limit = h.Ctl.StarveLimit(limit)
			}
			if chaos.Fire(chaos.Tantrum) {
				tries = limit
			}
			if full := int64(t-hd) >= int64(q.size); full || tries >= limit {
				ev := EvRingTantrum
				if full {
					ev = EvRingClose
				}
				q.closeRing(h, ev)
				return n, true
			}
			h.C.CellRetries++
			if q.cfg.AdaptiveContention {
				h.adaptFail()
			}
		}
	}
	return n, false
}

// DequeueBatch removes up to len(out) of the oldest values into out,
// reserving consecutive head indices with a single F&A sized to the
// population observed at entry (so an empty ring costs no F&A at all, and
// overshoot beyond a racing tail is bounded by the staleness of one load).
// Each reserved index runs the ordinary per-cell dequeue protocol of Figure
// 3b, bounded spin-wait included; indices that yield no value are repaired
// by the same fixState call the single-op path relies on.
//
// It returns how many values were written to out[0:]. 0 means the ring was
// observed empty: the only return of 0 is from the tail ≤ head proof below,
// never from a reservation whose cells all came up empty — that situation
// (abandoned indices left by racing or faulted enqueuers) retries exactly
// as the single-op Dequeue's internal loop does, so a 0 answer is always a
// linearizable emptiness witness.
//
//lcrq:hotpath
func (q *CRQ) DequeueBatch(h *Handle, out []uint64) int {
	kMax := uint64(len(out))
	if kMax == 0 {
		return 0
	}
	if q.scq != nil {
		return q.scqDequeueBatch(h, out)
	}
	if kMax > q.size {
		kMax = q.size
	}
retry:
	k := kMax
	// Clamp the reservation to the observed population. Reading head before
	// tail makes the empty answer linearizable: head is monotone, so at the
	// instant tail was loaded head ≥ hd held, and tail ≤ head means the ring
	// was empty at that instant.
	hd := q.head.Load()
	t := q.tail.Load() &^ closedBit
	if t <= hd {
		return 0
	}
	if avail := t - hd; k > avail {
		k = avail
	}
	base := q.faaHeadN(h, k)
	chaos.Delay(chaos.BatchDeqReserve)
	n := 0
	misses := false
	for i := uint64(0); i < k; i++ {
		hIdx := base + i
		chaos.Delay(chaos.DelayDeq)
		cell := q.cell(hIdx)
		spins := q.cfg.SpinWait
		before := n

	cellLoop:
		for {
			hi := cell.LoadHi()
			lo := cell.LoadLo()
			idx := lo & idxMask
			unsafeBit := lo & unsafeFlag

			if idx > hIdx {
				break cellLoop // overtaken: someone moved the cell past us
			}
			if hi != 0 {
				if idx == hIdx {
					if cas2(h, cell, chaos.DeqCAS2Fail, lo, hi, unsafeBit|(hIdx+q.size), 0) {
						out[n] = ^hi
						if q.stamps != nil {
							q.checkStamp(h, hIdx, n)
						}
						if q.cfg.AdaptiveContention {
							h.adaptOK()
						}
						n++
						break cellLoop
					}
				} else {
					if cas2(h, cell, chaos.DeqCAS2Fail, lo, hi, unsafeFlag|idx, hi) {
						h.C.UnsafeTrans++
						break cellLoop
					}
				}
			} else {
				if spins > 0 && q.tail.Load()&^closedBit > hIdx {
					spins--
					h.C.SpinWaits++
					continue cellLoop
				}
				if cas2(h, cell, chaos.DeqCAS2Fail, lo, 0, unsafeBit|(hIdx+q.size), 0) {
					h.C.EmptyTrans++
					break cellLoop
				}
			}
		}
		if n == before {
			misses = true
		}
	}
	if misses {
		// Some reserved index yielded nothing, so head may now exceed tail;
		// repair exactly as the single-op path does after an empty verdict.
		q.fixState(h)
	}
	if n == 0 {
		// The whole reservation missed (every cell was abandoned or moved
		// on). That proves nothing about emptiness — values deposited before
		// this call can still sit at higher indices — so go back to the
		// availability check; head has advanced, so this terminates once
		// tail ≤ head genuinely holds.
		h.C.CellRetries++
		if q.cfg.AdaptiveContention {
			h.adaptFail()
		}
		goto retry
	}
	return n
}

// fixState repairs the transient head > tail state a dequeuer's F&A can
// create (Figure 3c), so that a subsequent enqueuer does not spuriously
// observe a full ring. The comparison uses the full 64-bit tail: once the
// ring is closed the state no longer needs fixing, and head (< 2^63) can
// never exceed a closed tail.
//
//lcrq:hotpath
func (q *CRQ) fixState(h *Handle) {
	for {
		t := q.tail.Load()
		hd := q.head.Load()
		if q.tail.Load() != t {
			continue // tail moved between the two loads; retry
		}
		if hd <= t {
			return // nothing to fix
		}
		h.C.CAS++
		if q.tail.CompareAndSwap(t, hd) {
			return
		}
		h.C.CASFail++
	}
}
