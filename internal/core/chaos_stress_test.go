//go:build chaos

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

// chaosCampaign records genuinely concurrent histories on an LCRQ built
// from cfg and verifies each with the exhaustive linearizability checker.
// Histories are kept tiny (the checker is exponential); the value comes
// from the number of distinct fault-perturbed interleavings.
func chaosCampaign(t *testing.T, cfg Config, rounds, threads, opsEach int, seed uint64) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		q := NewLCRQ(cfg)
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				rng := xrand.New(seed + uint64(round)*1000 + uint64(th))
				<-start
				for i := 0; i < opsEach; i++ {
					if rng.Uint64()%2 == 0 {
						v := uint64(th)<<32 | uint64(i) + 1
						inv := rec.Now()
						if q.Enqueue(h, v) {
							rec.Append(th, linearize.Op{
								Kind: linearize.Enq, Value: v,
								Invoke: inv, Return: rec.Now(),
							})
						}
					} else {
						inv := rec.Now()
						v, ok := q.Dequeue(h)
						rec.Append(th, linearize.Op{
							Kind: linearize.Deq, Value: v, OK: ok,
							Invoke: inv, Return: rec.Now(),
						})
					}
				}
			}(th)
		}
		close(start)
		wg.Wait()
		hist := rec.History()
		if !linearize.Check(hist) {
			t.Fatalf("round %d: non-linearizable history under chaos:\n%v", round, hist)
		}
	}
}

// pointScenario describes how to make one injection point reachable: the
// queue configuration whose code path contains the point, and the firing
// probability (kept below 1 so forced-failure retry loops terminate).
type pointScenario struct {
	point chaos.Point
	prob  float64
	cfg   Config
}

func scenarios() []pointScenario {
	// Tiny rings and a low starvation limit force constant segment churn,
	// which is what drags every slow path into play.
	tiny := Config{RingOrder: 1, StarvationLimit: 4}
	epoch := Config{RingOrder: 1, StarvationLimit: 4, Reclamation: ReclaimEpoch}
	// A capacity of 2 with three threads enqueueing about half the time
	// keeps the item budget perpetually contended, so the capacity gate's
	// rejection path runs constantly. Rejected enqueues are simply not
	// recorded — linearizability must hold over the accepted ones.
	bounded := Config{RingOrder: 1, StarvationLimit: 4, Capacity: 2}
	return []pointScenario{
		{chaos.EnqCAS2Fail, 0.3, tiny},
		{chaos.DeqCAS2Fail, 0.3, tiny},
		{chaos.RingClose, 0.2, tiny},
		{chaos.Tantrum, 0.2, tiny},
		{chaos.DelayEnq, 0.5, tiny},
		{chaos.DelayDeq, 0.5, tiny},
		{chaos.Handoff, 0.7, tiny},
		{chaos.HazardWindow, 0.5, tiny}, // default reclamation is hazard
		{chaos.EpochWindow, 0.5, epoch},
		{chaos.CapacityGate, 0.5, bounded},
	}
}

// TestLinearizableUnderEachInjectionPoint proves the linearizability of the
// queue survives every individual injected fault, and that each scenario
// actually fired the fault it claims to test.
func TestLinearizableUnderEachInjectionPoint(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.point.String(), func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			chaos.Set(sc.point, sc.prob)
			chaosCampaign(t, sc.cfg, 40, 3, 6, 1)
			if chaos.Fired(sc.point) == 0 {
				t.Fatalf("injection point %v never fired; scenario is vacuous", sc.point)
			}
		})
	}
}

// TestLinearizableUnderCombinedFaults arms every point at once — CAS2
// failures, forced closes, tantrums, and scheduling delays interacting —
// and requires linearizability to survive the combination.
func TestLinearizableUnderCombinedFaults(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch} {
		t.Run(mode.String(), func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			chaos.EnableAll(0.15)
			cfg := Config{RingOrder: 1, StarvationLimit: 4, Reclamation: mode}
			chaosCampaign(t, cfg, 40, 3, 6, 77)
			var hits int
			for _, p := range chaos.Points() {
				if chaos.Fired(p) > 0 {
					hits++
				}
			}
			if hits < 5 {
				t.Fatalf("only %d injection points fired in the combined scenario", hits)
			}
		})
	}
}

// TestBoundedStalledReclaimerChaos is the stalled-reclaimer scenario the
// bounded-memory guarantee is really about: an epoch-mode bounded queue
// with one participant parked pinned (a stuck goroutine), chaos delays
// widening the stall-scan and epoch windows, and live traffic. The queue
// must declare the stall (instead of freezing reclamation), keep the ring
// chain within budget throughout, and preserve FIFO order — and the
// stall-scan injection point must actually fire.
func TestBoundedStalledReclaimerChaos(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	// The parked handle yields exactly one stall declaration, and the
	// stall-scan point fires at most once per declaration — so anything
	// below probability 1 makes the "never fired; scenario is vacuous"
	// check below a coin flip. Fire it deterministically.
	chaos.Set(chaos.StallScan, 1)
	chaos.Set(chaos.EpochWindow, 0.3)
	chaos.Set(chaos.CapacityGate, 0.3)
	const maxRings = 4
	q := NewLCRQ(Config{
		RingOrder:   1,
		Reclamation: ReclaimEpoch,
		MaxRings:    maxRings,
		StallAge:    time.Millisecond,
	})
	stalled := q.NewHandle()
	stalled.enter() // parks pinned for the whole test
	var wg sync.WaitGroup
	var violations atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q.Enqueue(h, uint64(w)<<32|i+1) {
					i++
				}
				q.Dequeue(h)
				if q.LiveRings() > maxRings {
					violations.Add(1)
				}
				q.KickReclaim(h)
			}
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q.EpochStalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if q.EpochStalls() == 0 {
		t.Fatal("stalled participant was never declared under chaos")
	}
	if n := violations.Load(); n > 0 {
		t.Fatalf("ring budget violated %d times with a stalled reclaimer", n)
	}
	if chaos.Fired(chaos.StallScan) == 0 {
		t.Fatal("stall-scan injection point never fired; scenario is vacuous")
	}
	// The queue must still be fully usable: drain, then FIFO round-trip.
	h := q.NewHandle()
	defer h.Release()
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
	}
	for i := uint64(1); i <= 8; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(1); i <= 8; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i {
			t.Fatalf("post-stall FIFO broken: got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	stalled.exit()
	stalled.Release()
}

// TestCloseDrainUnderChaos runs the close/drain protocol with every fault
// armed: producers racing Close across chaos-churned segments must neither
// lose nor duplicate an accepted item.
func TestCloseDrainUnderChaos(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.EnableAll(0.1)
	const producers = 3
	for round := 0; round < 20; round++ {
		q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4})
		accepted := make([]uint64, producers)
		var total atomic.Uint64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				<-start
				for i := 0; i < 64; i++ {
					if !q.Enqueue(h, uint64(p)<<32|uint64(i)+1) {
						return
					}
					accepted[p]++
					total.Add(1)
				}
			}(p)
		}
		closer := q.NewHandle()
		close(start)
		// Let chaos-perturbed traffic build up before pulling the plug;
		// producers only stop on close, so this always terminates.
		for total.Load() < 24 {
			runtime.Gosched()
		}
		q.Close(closer)
		wg.Wait()
		closer.Release()
		consumed := make(map[int][]uint64)
		h := q.NewHandle()
		for {
			v, ok := q.Dequeue(h)
			if !ok {
				break
			}
			consumed[int(v>>32)] = append(consumed[int(v>>32)], v&0xffffffff)
		}
		if q.Enqueue(h, 1) {
			t.Fatal("enqueue accepted after close and drain")
		}
		h.Release()
		for p := 0; p < producers; p++ {
			if uint64(len(consumed[p])) != accepted[p] {
				t.Fatalf("round %d producer %d: accepted %d, consumed %d",
					round, p, accepted[p], len(consumed[p]))
			}
			for i, v := range consumed[p] {
				if v != uint64(i)+1 {
					t.Fatalf("round %d producer %d: consumed[%d] = %d, want %d",
						round, p, i, v, i+1)
				}
			}
		}
	}
	if chaos.Fired(chaos.RingClose)+chaos.Fired(chaos.Tantrum) == 0 {
		t.Fatal("close/drain chaos test never forced a ring close or tantrum")
	}
}

// scqScenarios mirrors scenarios() for the portable SCQ ring: its own CAS
// and slow-path points plus the shared list-layer points, each with a
// configuration that routes traffic through the SCQ engine.
func scqScenarios() []pointScenario {
	tiny := Config{RingOrder: 1, StarvationLimit: 4, Ring: RingSCQ}
	bounded := Config{RingOrder: 1, StarvationLimit: 4, Ring: RingSCQ, Capacity: 2}
	return []pointScenario{
		{chaos.ScqEnqCAS, 0.3, tiny},
		{chaos.ScqDeqCAS, 0.3, tiny},
		{chaos.ScqCatchup, 0.5, tiny},
		{chaos.ScqThreshold, 0.5, tiny},
		{chaos.RingClose, 0.2, tiny},
		{chaos.Tantrum, 0.2, tiny},
		{chaos.DelayEnq, 0.5, tiny},
		{chaos.DelayDeq, 0.5, tiny},
		{chaos.CapacityGate, 0.5, bounded},
	}
}

// TestSCQLinearizableUnderEachInjectionPoint is the SCQ counterpart of the
// per-point campaign: linearizability must survive each fault individually,
// and each point must actually fire on the SCQ code path.
func TestSCQLinearizableUnderEachInjectionPoint(t *testing.T) {
	for _, sc := range scqScenarios() {
		t.Run(sc.point.String(), func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			chaos.Set(sc.point, sc.prob)
			chaosCampaign(t, sc.cfg, 40, 3, 6, 13)
			if chaos.Fired(sc.point) == 0 {
				t.Fatalf("injection point %v never fired; scenario is vacuous", sc.point)
			}
		})
	}
}

// TestSCQLinearizableUnderCombinedFaults arms every point at once over the
// SCQ engine, under both reclamation modes.
func TestSCQLinearizableUnderCombinedFaults(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch} {
		t.Run(mode.String(), func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			chaos.EnableAll(0.15)
			cfg := Config{RingOrder: 1, StarvationLimit: 4, Ring: RingSCQ, Reclamation: mode}
			chaosCampaign(t, cfg, 40, 3, 6, 99)
			var hits int
			for _, p := range chaos.Points() {
				if chaos.Fired(p) > 0 {
					hits++
				}
			}
			if hits < 5 {
				t.Fatalf("only %d injection points fired in the combined SCQ scenario", hits)
			}
			if chaos.Fired(chaos.ScqEnqCAS)+chaos.Fired(chaos.ScqDeqCAS) == 0 {
				t.Fatal("no SCQ entry CAS ever failed; campaign missed the SCQ engine")
			}
		})
	}
}

// TestSCQBoundedChaos runs the capacity gate over SCQ rings under combined
// faults: the bound must hold and accepted traffic must stay linearizable.
func TestSCQBoundedChaos(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.EnableAll(0.15)
	cfg := Config{RingOrder: 1, StarvationLimit: 4, Ring: RingSCQ, Capacity: 2}
	chaosCampaign(t, cfg, 40, 3, 6, 7)
	if chaos.Fired(chaos.CapacityGate) == 0 {
		t.Fatal("capacity gate never fired; bounded SCQ scenario is vacuous")
	}
}
