# Convenience targets for the LCRQ reproduction. Everything is plain
# `go` — the Makefile just names the common invocations.

GO ?= go

.PHONY: all build vet test race purego chaos soak fuzz bench batchbench oversubbench ringbench examples reproduce check clean lint crossarch e2e e2e-baseline

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lcrqlint: the repo's own go/analysis suite — nine analyzers: the v1
# per-word checks (align128, atomiconly, padcheck, hotpath, statsmirror;
# DESIGN.md §10) and the v2 protocol checks (seqlockcheck, singlewriter,
# publication, chaosreg; DESIGN.md §15). Runs standalone over the non-test
# tree, then again as a go vet -vettool so test files are covered too.
lint:
	$(GO) run ./cmd/lcrqlint ./...
	$(GO) build -o $(CURDIR)/bin/lcrqlint ./cmd/lcrqlint
	$(GO) vet -vettool=$(CURDIR)/bin/lcrqlint ./...

# Cross-GOARCH compile checks: arm64 exercises the portable CAS2 fallback
# path, 386 the 32-bit alignment rules align128 reasons about.
crossarch:
	GOARCH=arm64 $(GO) build ./...
	GOARCH=386 $(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Exercise the portable CAS2 emulation even on amd64.
purego:
	$(GO) test -tags purego ./...

# Fault-injection suite: arms every internal/chaos injection point under
# the race detector and re-runs the linearizability checker under faults.
chaos:
	$(GO) test -race -tags=chaos ./...

# Timed governance soak: bounded epoch queue + stall recovery + watchdog
# under every injection point and the race detector, budgets asserted
# continuously. Override the duration with SOAK_SECONDS.
SOAK_SECONDS ?= 60
soak:
	LCRQ_SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -tags=chaos -run TestSoak -v -timeout=10m .

# Short fuzzing pass over the fuzz targets.
fuzz:
	$(GO) test -fuzz FuzzQueueModel -fuzztime 30s .
	$(GO) test -fuzz FuzzTypedModel -fuzztime 30s .
	$(GO) test -fuzz FuzzPacked32Model -fuzztime 30s .
	$(GO) test -fuzz FuzzCloseDrain -fuzztime 30s .
	$(GO) test -fuzz FuzzBoundedCapacity -fuzztime 30s .

bench:
	$(GO) test -bench=. -benchmem ./...

# Batched-operation study: throughput and F&A amortization for
# EnqueueBatch/DequeueBatch block sizes 1..64, with a JSON sidecar.
batchbench:
	$(GO) run ./cmd/qbench -batch 64 -metrics BENCH_batch.json

# Oversubscription study: fixed spin constants vs the adaptive contention
# controller at 1x/2x/4x/8x GOMAXPROCS, interleaved paired runs, with a
# JSON sidecar (the committed baseline is BENCH_contention.json).
oversubbench:
	$(GO) run ./cmd/qbench -oversub 8 -pairs 50000 -runs 24 -metrics BENCH_contention.json

# Ring-engine study: the portable SCQ ring vs the CAS2 ring under the
# paper's pairwise workload, with the SCQ/LCRQ throughput ratio printed and
# a JSON sidecar (the committed baseline is BENCH_ring.json).
ringbench:
	$(GO) run ./cmd/qbench -ring scq,lcrq -threads 1,2,4,8 -pairs 50000 -runs 8 -metrics BENCH_ring.json

# End-to-end queue-as-a-service check: build qserve and qload, run the
# sweep with all three fault scenarios (killed connections, slow-consumer
# shed/recover, mid-traffic SIGTERM drain), and gate enqueue p99 against
# the committed trajectory in BENCH_e2e.json (>2x regression fails).
# Override the per-cell load duration with E2E_DURATION.
E2E_DURATION ?= 500ms
e2e:
	$(GO) build -o $(CURDIR)/bin/qserve ./cmd/qserve
	$(GO) build -o $(CURDIR)/bin/qload ./cmd/qload
	$(CURDIR)/bin/qload -qserve $(CURDIR)/bin/qserve -duration $(E2E_DURATION) -baseline BENCH_e2e.json -out BENCH_e2e_run.json

# Regenerate the committed baseline artifact (run on a quiet machine).
e2e-baseline:
	$(GO) build -o $(CURDIR)/bin/qserve ./cmd/qserve
	$(GO) build -o $(CURDIR)/bin/qload ./cmd/qload
	$(CURDIR)/bin/qload -qserve $(CURDIR)/bin/qserve -duration 2s -out BENCH_e2e.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/taskpool
	$(GO) run ./examples/instrumentation
	$(GO) run ./examples/portable

# Scaled-down version of the paper's full evaluation (see -paper for the
# real thing).
reproduce:
	$(GO) run ./cmd/reproduce -o report_scaled.md

# Linearizability campaign across every registered queue.
linearcheck:
	$(GO) run ./cmd/linearcheck -rounds 300 -v

# Bounded model checking of the CRQ protocol.
modelcheck:
	$(GO) run ./cmd/modelcheck -max 2000000
	$(GO) run ./cmd/modelcheck -mutate empty -ops 2 || true
	$(GO) run ./cmd/modelcheck -mutate idx -ops 2 || true

check: build vet lint crossarch test race purego chaos e2e

clean:
	$(GO) clean ./...
