package lcrq

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// MetricsHandler returns an http.Handler that serves the queue's telemetry
// in the Prometheus text exposition format (version 0.0.4), with zero
// dependencies beyond the standard library. Mount it wherever the scraper
// looks, e.g.:
//
//	http.Handle("/metrics", q.MetricsHandler())
//
// Counter and latency series require WithTelemetry; the gauges
// (lcrq_queue_depth, lcrq_live_rings, lcrq_recycler_rings, lcrq_closed) are
// served regardless. Latencies are exported as summaries in seconds.
func (q *Queue) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, q.Metrics())
	})
}

// WritePrometheus writes the metrics snapshot m to w in the Prometheus text
// exposition format (version 0.0.4). MetricsHandler uses it; servers that
// compose the queue's series with their own on one scrape endpoint (e.g.
// cmd/qserve appending its shed/drain/retry counters) call it directly.
func WritePrometheus(w io.Writer, m Metrics) { writeProm(w, m) }

// PublishExpvar publishes the queue's Metrics under the given name in the
// process-wide expvar registry (served at /debug/vars by the default mux).
// Each read of the variable takes a fresh snapshot. Like expvar.Publish it
// panics if the name is already registered, so give each queue its own.
func (q *Queue) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return q.Metrics() }))
}

func writeProm(b io.Writer, m Metrics) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	gauge("lcrq_queue_depth", "Approximate number of queued items (tail-head index delta).", m.Depth)
	gauge("lcrq_live_rings", "Ring segments currently linked in the queue.", m.LiveRings)
	gauge("lcrq_recycler_rings", "Approximate ring segments parked in the recycler (upper bound).", m.RecyclerRings)
	closed := int64(0)
	if m.Closed {
		closed = 1
	}
	gauge("lcrq_closed", "1 once the queue has been closed to new enqueues.", closed)
	gauge("lcrq_handles", "Live per-goroutine handles.", int64(m.Handles))
	gauge("lcrq_latency_sample_stride", "Latency sampling stride N (0 = sampling off).", int64(m.SampleN))
	gauge("lcrq_capacity", "Configured item bound (0 = unbounded).", m.Capacity)
	gauge("lcrq_max_rings", "Configured ring-segment budget (0 = unbounded).", int64(m.MaxRings))
	gauge("lcrq_items", "Exact in-flight items on a capacity-bounded queue (0 on unbounded).", m.Items)
	counter("lcrq_capacity_rejects_total", "Enqueue attempts rejected by the item or ring budget.", m.CapacityRejects)
	counter("lcrq_epoch_stalls_total", "Reclamation participants declared stalled-by-policy.", m.EpochStalls)
	counter("lcrq_orphan_recoveries_total", "Leaked handles recovered by the orphan finalizer.", m.OrphanRecoveries)
	wdOK := int64(0)
	if m.Health.OK {
		wdOK = 1
	}
	fmt.Fprintf(b, "# HELP lcrq_watchdog_ok 1 while the watchdog's latest verdict is healthy (also 1 when disabled).\n# TYPE lcrq_watchdog_ok gauge\nlcrq_watchdog_ok{verdict=%q} %d\n", m.Health.Verdict, wdOK)
	counter("lcrq_watchdog_checks_total", "Watchdog inspection ticks completed.", m.Health.Checks)
	adaptive := int64(0)
	if m.Contention.Enabled {
		adaptive = 1
	}
	gauge("lcrq_adaptive", "1 when the adaptive contention controller is armed.", adaptive)
	gauge("lcrq_contention_boost", "Current watchdog remediation boost (each step doubles the starvation threshold).", int64(m.Contention.Boost))
	counter("lcrq_contention_raises_total", "Remediation boost raises (tantrum-storm verdicts that widened thresholds).", m.Contention.Raises)
	counter("lcrq_contention_decays_total", "Remediation boost decays (healthy ticks that narrowed thresholds).", m.Contention.Decays)

	s := m.Stats
	counter("lcrq_enqueues_total", "Completed enqueue operations.", s.Enqueues)
	counter("lcrq_dequeues_total", "Completed dequeue operations, empty results included.", s.Dequeues)
	counter("lcrq_dequeue_empty_total", "Dequeues that found the queue empty.", s.Empty)
	counter("lcrq_faa_total", "Fetch-and-add instructions issued.", s.FetchAdds)
	counter("lcrq_swap_total", "Swap (XCHG) instructions issued.", s.Swaps)
	counter("lcrq_tas_total", "Test-and-set instructions issued.", s.TestAndSets)
	counter("lcrq_cas_total", "Single-width CAS attempts.", s.CASAttempts)
	counter("lcrq_cas_failures_total", "Single-width CAS attempts that failed.", s.CASFailures)
	counter("lcrq_cas2_total", "Double-width CAS attempts.", s.CAS2Attempts)
	counter("lcrq_cas2_failures_total", "Double-width CAS attempts that failed.", s.CAS2Failures)
	counter("lcrq_cell_retries_total", "Extra head/tail fetch-and-adds beyond the first.", s.CellRetries)
	counter("lcrq_empty_transitions_total", "Empty transitions performed by dequeuers.", s.EmptyTransitions)
	counter("lcrq_unsafe_transitions_total", "Unsafe transitions performed by dequeuers.", s.UnsafeTransitions)
	counter("lcrq_spin_waits_total", "Bounded dequeuer waits for a matching enqueuer.", s.SpinWaits)
	counter("lcrq_threshold_empties_total", "SCQ emptiness verdicts reached via the threshold trick.", s.ThresholdEmpties)
	counter("lcrq_free_empties_total", "SCQ enqueues that found the free-index queue empty (ring full).", s.FreeEmpties)
	counter("lcrq_ring_closes_total", "Ring segments closed.", s.RingCloses)
	counter("lcrq_ring_appends_total", "Ring segments appended to the list.", s.RingAppends)
	counter("lcrq_ring_recycles_total", "Appended segments satisfied from the recycler.", s.RingRecycles)
	counter("lcrq_batch_enqueues_total", "EnqueueBatch calls (items count in lcrq_enqueues_total).", s.BatchEnqueues)
	counter("lcrq_batch_dequeues_total", "DequeueBatch calls (items count in lcrq_dequeues_total).", s.BatchDequeues)
	counter("lcrq_batch_spills_total", "Batches that spilled into a freshly appended ring.", s.BatchSpills)
	counter("lcrq_gate_spins_total", "Hierarchical cluster-gate spin iterations.", s.GateSpins)
	counter("lcrq_adapt_raises_total", "Per-handle MIAD backoff raises (failed cell attempts).", s.AdaptiveRaises)
	counter("lcrq_adapt_decays_total", "Per-handle MIAD backoff decays (completed operations).", s.AdaptiveDecays)
	counter("lcrq_adapt_spins_total", "Adaptive backoff pause iterations burned.", s.AdaptiveSpins)
	gauge("lcrq_trace_sample_stride", "Item-trace sampling stride N (0 = tracing off, -1 = forced-only).", int64(m.TraceSampleN))
	counter("lcrq_trace_arms_total", "Item traces armed on the enqueue side (sampled + forced).", s.TraceArms)
	counter("lcrq_trace_hits_total", "Stamped items claimed and measured by dequeues.", s.TraceHits)

	if len(m.RingEvents) > 0 {
		fmt.Fprintf(b, "# HELP lcrq_ring_events_total Ring-lifecycle transitions by event.\n# TYPE lcrq_ring_events_total counter\n")
		for _, name := range sortedKeys(m.RingEvents) {
			fmt.Fprintf(b, "lcrq_ring_events_total{event=%q} %d\n", name, m.RingEvents[name])
		}
	}
	if len(m.Chaos) > 0 {
		fmt.Fprintf(b, "# HELP lcrq_chaos_fired_total Fault-injection firings by point (zero without -tags=chaos).\n# TYPE lcrq_chaos_fired_total counter\n")
		for _, name := range sortedKeys(m.Chaos) {
			fmt.Fprintf(b, "lcrq_chaos_fired_total{point=%q} %d\n", name, m.Chaos[name])
		}
	}

	fmt.Fprintf(b, "# HELP lcrq_op_latency_seconds Sampled operation latency by op.\n# TYPE lcrq_op_latency_seconds summary\n")
	for _, series := range []struct {
		op  string
		lat LatencySummary
	}{
		{"enqueue", m.Enqueue},
		{"dequeue", m.Dequeue},
		{"dequeue_wait", m.DequeueWait},
		{"enqueue_wait", m.EnqueueWait},
	} {
		for _, qv := range []struct {
			q string
			v float64
		}{
			{"0.5", series.lat.P50.Seconds()},
			{"0.99", series.lat.P99.Seconds()},
			{"0.999", series.lat.P999.Seconds()},
		} {
			fmt.Fprintf(b, "lcrq_op_latency_seconds{op=%q,quantile=%q} %g\n", series.op, qv.q, qv.v)
		}
		sum := float64(series.lat.Mean.Seconds()) * float64(series.lat.Samples)
		fmt.Fprintf(b, "lcrq_op_latency_seconds_sum{op=%q} %g\n", series.op, sum)
		fmt.Fprintf(b, "lcrq_op_latency_seconds_count{op=%q} %d\n", series.op, series.lat.Samples)
	}

	fmt.Fprintf(b, "# HELP lcrq_sojourn_seconds Sampled item ring residency (enqueue deposit to dequeue claim).\n# TYPE lcrq_sojourn_seconds summary\n")
	for _, qv := range []struct {
		q string
		v float64
	}{
		{"0.5", m.Sojourn.P50.Seconds()},
		{"0.99", m.Sojourn.P99.Seconds()},
		{"0.999", m.Sojourn.P999.Seconds()},
	} {
		fmt.Fprintf(b, "lcrq_sojourn_seconds{quantile=%q} %g\n", qv.q, qv.v)
	}
	fmt.Fprintf(b, "lcrq_sojourn_seconds_sum %g\n", m.Sojourn.Mean.Seconds()*float64(m.Sojourn.Samples))
	fmt.Fprintf(b, "lcrq_sojourn_seconds_count %d\n", m.Sojourn.Samples)

	fmt.Fprintf(b, "# HELP lcrq_batch_size Accepted batch sizes by op (items; _sum is items, _count is batches).\n# TYPE lcrq_batch_size summary\n")
	for _, series := range []struct {
		op string
		bs BatchSummary
	}{
		{"enqueue_batch", m.EnqueueBatch},
		{"dequeue_batch", m.DequeueBatch},
	} {
		for _, qv := range []struct {
			q string
			v int64
		}{
			{"0.5", series.bs.P50},
			{"0.99", series.bs.P99},
		} {
			fmt.Fprintf(b, "lcrq_batch_size{op=%q,quantile=%q} %d\n", series.op, qv.q, qv.v)
		}
		fmt.Fprintf(b, "lcrq_batch_size_sum{op=%q} %d\n", series.op, series.bs.Items)
		fmt.Fprintf(b, "lcrq_batch_size_count{op=%q} %d\n", series.op, series.bs.Batches)
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
