package lcrq

import (
	"math/bits"
	"time"

	"lcrq/internal/core"
)

// Option configures a Queue at construction time.
type Option func(*core.Config)

// WithRingSize sets the capacity R of each ring segment, rounded up to a
// power of two and clamped to [2, 2^26]. The paper's evaluation uses 2^17;
// its sensitivity study shows anything holding all running threads performs
// well. The default is 2^12.
func WithRingSize(r int) Option {
	return func(c *core.Config) {
		if r < 2 {
			r = 2
		}
		order := bits.Len(uint(r - 1)) // ceil(log2 r)
		c.RingOrder = order
	}
}

// WithRingOrder sets log2 of the ring segment capacity directly.
func WithRingOrder(order int) Option {
	return func(c *core.Config) { c.RingOrder = order }
}

// WithPortableRing selects the SCQ ring engine (Nikolaev's scalable
// circular queue): cycle-tagged 64-bit entries driven by single-word
// CAS/AND, so rings are lock-free on any GOARCH — no CMPXCHG16B, no
// 128-bit emulation. This is already the default everywhere except native
// amd64 builds; use it there to measure the portable engine on CAS2-capable
// hardware. See DESIGN.md §16.
func WithPortableRing() Option {
	return func(c *core.Config) { c.Ring = core.RingSCQ }
}

// WithCAS2Ring forces the 128-bit CAS2 ring engine, the paper's CRQ. On
// non-amd64, purego, or race builds the CAS2 itself runs through the
// striped-lock emulation — correct but no longer lock-free; prefer the
// default (SCQ) there unless comparing the engines.
func WithCAS2Ring() Option {
	return func(c *core.Config) { c.Ring = core.RingCAS2 }
}

// WithCASLoopFAA emulates fetch-and-add with a CAS loop, reproducing the
// paper's LCRQ-CAS comparison point. Strictly worse under contention; it
// exists to measure exactly how much worse.
func WithCASLoopFAA() Option {
	return func(c *core.Config) { c.CASLoopFAA = true }
}

// WithHierarchical enables the LCRQ+H cluster-batching optimization: an
// operation arriving from a cluster other than the ring's current owner
// waits up to timeout (0 means the paper's 100 µs) before proceeding,
// causing operations to complete in same-cluster batches on NUMA systems.
// Pair with Handle.SetCluster.
func WithHierarchical(timeout time.Duration) Option {
	return func(c *core.Config) {
		c.Hierarchical = true
		c.ClusterTimeout = timeout
	}
}

// WithoutPadding packs ring cells densely (16 bytes each) instead of
// padding them to a false-sharing range. Saves 8× memory per ring at the
// cost of false sharing between neighboring cells.
func WithoutPadding() Option {
	return func(c *core.Config) { c.NoPadding = true }
}

// WithoutRecycling disables hazard-pointer ring recycling; retired rings
// are left to the garbage collector.
func WithoutRecycling() Option {
	return func(c *core.Config) { c.NoRecycle = true }
}

// WithoutHazardPointers removes hazard pointers from the operation path
// entirely, relying on Go's garbage collector for reclamation safety (an
// option the paper's C implementation does not have). Implies
// WithoutRecycling. Use to shed the per-operation publication fence when
// ring churn is rare, or to measure its cost.
func WithoutHazardPointers() Option {
	return func(c *core.Config) { c.NoHazard = true }
}

// WithEpochReclamation swaps the paper's hazard pointers for epoch-based
// reclamation: cheaper per operation (one pin/unpin instead of a pointer
// publication and revalidation) but a stalled thread delays all ring
// recycling. See the BenchmarkAblationReclamation comparison.
func WithEpochReclamation() Option {
	return func(c *core.Config) { c.Reclamation = core.ReclaimEpoch }
}

// WithSpinWait bounds how long a dequeuer waits for an in-flight matching
// enqueuer before poisoning the cell (§4.1.1 of the paper). iters < 0
// disables the wait; 0 selects the default.
func WithSpinWait(iters int) Option {
	return func(c *core.Config) { c.SpinWait = iters }
}

// WithStarvationLimit sets how many failed attempts an enqueuer tolerates
// before closing the ring segment and appending a fresh one.
func WithStarvationLimit(attempts int) Option {
	return func(c *core.Config) { c.StarvationLimit = attempts }
}

// WithTelemetry enables the live telemetry layer: Queue.Metrics aggregates
// per-handle operation counters while the queue serves traffic, per-op
// latency is sampled 1-in-1024 (see WithLatencySampling to tune), live
// gauges track queue depth and ring lifecycle, and Queue.MetricsHandler /
// Queue.PublishExpvar export everything with zero dependencies.
//
// Telemetry is off by default. When off, the only residue on the operation
// fast path is a nil-pointer check; when on, the per-op cost is one
// counter decrement plus an amortized counter publication every 256 ops —
// the queue's own atomics remain untouched either way.
func WithTelemetry() Option {
	return func(c *core.Config) { c.Telemetry = true }
}

// WithLatencySampling enables telemetry (as WithTelemetry) and sets its
// latency sampling stride: every n-th operation per handle is timed into
// the log-bucketed Enqueue/Dequeue/DequeueWait histograms. n ≤ 0 disables
// latency sampling while keeping counters, gauges, and the event trace.
func WithLatencySampling(n int) Option {
	return func(c *core.Config) {
		c.Telemetry = true
		if n <= 0 {
			n = -1 // normalized to "sampling disabled"
		}
		c.LatencySampleN = n
	}
}

// WithTracing enables sampled item-level tracing (and telemetry, which
// carries its aggregates): every n-th value a handle enqueues is stamped
// with a trace ID and timestamp, and the dequeue that claims it measures the
// value's ring sojourn — how long the item sat in the queue, as opposed to
// how long the operations took. Sojourn quantiles appear in
// Metrics.Sojourn, the Prometheus export (lcrq_sojourn_seconds), and the
// Queue.TraceHandler JSON endpoint; individual traces are readable via
// Queue.RecentTraces and per-operation via Handle.LastDequeueTraces.
//
// n ≤ 0 selects the default stride (1024). Callers can additionally force a
// trace with a chosen identity onto the next enqueue (Handle.ForceTrace) —
// that is how the qserve wire path threads a client's trace ID through the
// queue. Tracing adds two predictable branches to the traced queue's
// operation paths and touches the clock only for the 1-in-n stamped items
// (TestTracingOffOverhead and TestTracingSampledOverhead pin both costs).
func WithTracing(n int) Option {
	return func(c *core.Config) {
		c.Telemetry = true
		if n <= 0 {
			n = core.DefaultTraceSampleN
		}
		c.TraceSampleN = n
	}
}

// WithForcedTracingOnly enables the item-trace machinery (stamp arrays, the
// sojourn histogram, trace endpoints) without any sampling: only traces
// explicitly forced with Handle.ForceTrace are stamped. Useful when an
// upstream layer (e.g. a server honoring client trace IDs) decides what to
// trace.
func WithForcedTracingOnly() Option {
	return func(c *core.Config) {
		c.Telemetry = true
		c.TraceSampleN = -1
	}
}

// WithCapacity bounds the number of items in flight: an enqueue that would
// push the exact item account past n items is rejected instead of growing
// the queue — Enqueue reports false, TryEnqueue returns ErrFull, and
// EnqueueWait blocks until a dequeue frees budget. A ring budget is derived
// automatically (⌈n/R⌉+1 segments, one extra for the drained-but-unretired
// head ring), so a bounded queue's memory stays bounded even when consumers
// stall; combine with WithMaxRings to set the segment budget explicitly.
// n ≤ 0 leaves the queue unbounded.
//
// The bound is enforced with one atomic add per operation on the shared
// item account; unbounded queues skip it entirely, so the default
// configuration is unaffected.
func WithCapacity(n int64) Option {
	return func(c *core.Config) { c.Capacity = n }
}

// WithMaxRings bounds the number of ring segments linked in the queue's
// list: an enqueue that would need to append a segment past the budget is
// rejected like a capacity overflow. This caps the queue's memory at
// roughly n × ring size even without an item bound (items can still pack
// densely into the allowed rings). Budgets below 2 are raised to 2 — the
// terminal ring only retires once a successor exists, so a budget of 1
// would wedge after the first ring close. n ≤ 0 leaves the chain unbounded
// unless WithCapacity derives a budget.
func WithMaxRings(n int) Option {
	return func(c *core.Config) { c.MaxRings = n }
}

// WithReclamationBatch sets the hazard-pointer scan threshold: a worker's
// retired-ring list is scanned for reclamation once it holds n × (number of
// workers) entries. Smaller values tighten the bound on retired-but-
// unreclaimed memory at the cost of more frequent scans; 0 keeps the
// default (8). Only meaningful in the default hazard reclamation mode.
func WithReclamationBatch(n int) Option {
	return func(c *core.Config) { c.ReclamationBatch = n }
}

// WithStallRecovery enables stall-resilient epoch reclamation: a worker
// observed pinned in an old epoch for longer than age stops blocking
// reclamation (it is declared stalled-by-policy, counted in
// Metrics.EpochStalls, and reported as an epoch-stall event). While any
// worker is stalled, reclaimed rings go to the garbage collector instead of
// the recycler, since the stalled worker may still hold them — reclamation
// stays live, recycling resumes when the stall clears. age 0 selects the
// default (10 ms). Only meaningful with WithEpochReclamation; bounded
// epoch-mode queues enable it automatically, because a queue that cannot
// reclaim rings cannot accept items.
func WithStallRecovery(age time.Duration) Option {
	return func(c *core.Config) {
		if age <= 0 {
			age = core.DefaultStallAge
		}
		c.StallAge = age
	}
}

// WithWatchdog starts a background health checker that inspects the
// queue's telemetry every interval (0 selects 100 ms) and maintains a
// verdict readable via Queue.Health and Metrics.Health: tantrum storms
// (rings closing faster than items flow), capacity stalls (a bounded queue
// full with no consumer progress), and epoch reclamation stalls. Each
// ok→problem transition is reported as a watchdog-alert event, and in epoch
// mode every check also kicks reclamation forward so a traffic lull cannot
// freeze ring recycling. Implies WithTelemetry (the checks read the
// telemetry aggregates). The watchdog goroutine stops at Close.
func WithWatchdog(interval time.Duration) Option {
	return func(c *core.Config) {
		if interval <= 0 {
			interval = core.DefaultWatchdogInterval
		}
		c.Watchdog = interval
		c.Telemetry = true
	}
}

// WithAdaptiveContention arms the per-handle adaptive contention controller,
// replacing the fixed spin constants with measured backpressure:
//
//   - Cell-retry backoff follows an MIAD rule (multiplicative increase on a
//     failed cell attempt, additive decrease on success), so a handle that
//     keeps losing CAS2 races backs off exponentially instead of hammering
//     the contended line, and drains its backoff as soon as it wins again.
//   - The starvation threshold widens with the handle's current backoff
//     level and with the watchdog's shared remediation boost, so a tantrum
//     storm damps (operations wait longer before closing rings) instead of
//     cascading into ring-allocation churn.
//   - EnqueueWait/DequeueWait remember their backoff level across calls and
//     jitter every sleep, dispersing thundering herds of parked waiters.
//
// When a watchdog is running (WithWatchdog), its tantrum-storm verdict raises
// the shared boost and healthy ticks decay it, reported as contention-adapt
// events and in Metrics.Contention. Off by default: the fixed constants of
// WithSpinWait/WithStarvationLimit match the paper's evaluation and cost
// nothing to keep; the controller is for workloads whose contention varies
// too much for one constant (see DESIGN.md §14). Tune with
// WithAdaptiveSpinBounds and WithAdaptiveBoostMax.
func WithAdaptiveContention() Option {
	return func(c *core.Config) { c.AdaptiveContention = true }
}

// WithAdaptiveSpinBounds sets the MIAD backoff range of the adaptive
// contention controller: a failed cell attempt doubles the handle's spin
// level within [min, max], and each success subtracts the decay step. Zero
// or negative values select the defaults (32, 4096, decay 8); max is raised
// to min if smaller. Implies WithAdaptiveContention.
func WithAdaptiveSpinBounds(min, max, decay int) Option {
	return func(c *core.Config) {
		c.AdaptiveContention = true
		c.AdaptSpinMin = min
		c.AdaptSpinMax = max
		c.AdaptDecay = decay
	}
}

// WithAdaptiveBoostMax caps the watchdog remediation boost: each boost step
// doubles every handle's effective starvation threshold, so the cap bounds
// the widening at base × 2^n. 0 selects the default (3); values above the
// hard ceiling (16) are clamped; negative disables remediation entirely
// (the controller still adapts per handle, but the watchdog cannot widen
// thresholds queue-wide). Implies WithAdaptiveContention.
func WithAdaptiveBoostMax(n int) Option {
	return func(c *core.Config) {
		c.AdaptiveContention = true
		c.AdaptBoostMax = n
	}
}

// WithWaitBackoff bounds the exponential backoff DequeueWait uses while the
// queue is empty: after a brief spin the waiter sleeps min, doubling up to
// max. Zero values select the defaults (4 µs and 1 ms); max is raised to
// min if it is smaller. Lower bounds poll more aggressively (lower latency,
// more CPU while idle); higher bounds do the opposite. EnqueueWait shares
// the bounds for its full-queue backoff.
func WithWaitBackoff(min, max time.Duration) Option {
	return func(c *core.Config) {
		c.WaitBackoffMin = min
		c.WaitBackoffMax = max
	}
}

// withUnbounded strips the resource-governance options from a derived
// internal queue. The typed facade applies it to its free-list queue: the
// free list is seeded with exactly the arena's slot indices, so a capacity
// bound there would reject recycled indices and silently shrink the arena,
// and a watchdog there would double-report the user's queue.
func withUnbounded() Option {
	return func(c *core.Config) {
		c.Capacity = 0
		c.MaxRings = 0
		c.Watchdog = 0
		// The free list shuttles recycled slot indices; tracing it would
		// interleave meaningless free-list sojourns with the user's series.
		c.TraceSampleN = 0
	}
}
