package lcrq

import (
	"math/bits"
	"time"

	"lcrq/internal/core"
)

// Option configures a Queue at construction time.
type Option func(*core.Config)

// WithRingSize sets the capacity R of each ring segment, rounded up to a
// power of two and clamped to [2, 2^26]. The paper's evaluation uses 2^17;
// its sensitivity study shows anything holding all running threads performs
// well. The default is 2^12.
func WithRingSize(r int) Option {
	return func(c *core.Config) {
		if r < 2 {
			r = 2
		}
		order := bits.Len(uint(r - 1)) // ceil(log2 r)
		c.RingOrder = order
	}
}

// WithRingOrder sets log2 of the ring segment capacity directly.
func WithRingOrder(order int) Option {
	return func(c *core.Config) { c.RingOrder = order }
}

// WithCASLoopFAA emulates fetch-and-add with a CAS loop, reproducing the
// paper's LCRQ-CAS comparison point. Strictly worse under contention; it
// exists to measure exactly how much worse.
func WithCASLoopFAA() Option {
	return func(c *core.Config) { c.CASLoopFAA = true }
}

// WithHierarchical enables the LCRQ+H cluster-batching optimization: an
// operation arriving from a cluster other than the ring's current owner
// waits up to timeout (0 means the paper's 100 µs) before proceeding,
// causing operations to complete in same-cluster batches on NUMA systems.
// Pair with Handle.SetCluster.
func WithHierarchical(timeout time.Duration) Option {
	return func(c *core.Config) {
		c.Hierarchical = true
		c.ClusterTimeout = timeout
	}
}

// WithoutPadding packs ring cells densely (16 bytes each) instead of
// padding them to a false-sharing range. Saves 8× memory per ring at the
// cost of false sharing between neighboring cells.
func WithoutPadding() Option {
	return func(c *core.Config) { c.NoPadding = true }
}

// WithoutRecycling disables hazard-pointer ring recycling; retired rings
// are left to the garbage collector.
func WithoutRecycling() Option {
	return func(c *core.Config) { c.NoRecycle = true }
}

// WithoutHazardPointers removes hazard pointers from the operation path
// entirely, relying on Go's garbage collector for reclamation safety (an
// option the paper's C implementation does not have). Implies
// WithoutRecycling. Use to shed the per-operation publication fence when
// ring churn is rare, or to measure its cost.
func WithoutHazardPointers() Option {
	return func(c *core.Config) { c.NoHazard = true }
}

// WithEpochReclamation swaps the paper's hazard pointers for epoch-based
// reclamation: cheaper per operation (one pin/unpin instead of a pointer
// publication and revalidation) but a stalled thread delays all ring
// recycling. See the BenchmarkAblationReclamation comparison.
func WithEpochReclamation() Option {
	return func(c *core.Config) { c.Reclamation = core.ReclaimEpoch }
}

// WithSpinWait bounds how long a dequeuer waits for an in-flight matching
// enqueuer before poisoning the cell (§4.1.1 of the paper). iters < 0
// disables the wait; 0 selects the default.
func WithSpinWait(iters int) Option {
	return func(c *core.Config) { c.SpinWait = iters }
}

// WithStarvationLimit sets how many failed attempts an enqueuer tolerates
// before closing the ring segment and appending a fresh one.
func WithStarvationLimit(attempts int) Option {
	return func(c *core.Config) { c.StarvationLimit = attempts }
}

// WithTelemetry enables the live telemetry layer: Queue.Metrics aggregates
// per-handle operation counters while the queue serves traffic, per-op
// latency is sampled 1-in-1024 (see WithLatencySampling to tune), live
// gauges track queue depth and ring lifecycle, and Queue.MetricsHandler /
// Queue.PublishExpvar export everything with zero dependencies.
//
// Telemetry is off by default. When off, the only residue on the operation
// fast path is a nil-pointer check; when on, the per-op cost is one
// counter decrement plus an amortized counter publication every 256 ops —
// the queue's own atomics remain untouched either way.
func WithTelemetry() Option {
	return func(c *core.Config) { c.Telemetry = true }
}

// WithLatencySampling enables telemetry (as WithTelemetry) and sets its
// latency sampling stride: every n-th operation per handle is timed into
// the log-bucketed Enqueue/Dequeue/DequeueWait histograms. n ≤ 0 disables
// latency sampling while keeping counters, gauges, and the event trace.
func WithLatencySampling(n int) Option {
	return func(c *core.Config) {
		c.Telemetry = true
		if n <= 0 {
			n = -1 // normalized to "sampling disabled"
		}
		c.LatencySampleN = n
	}
}

// WithWaitBackoff bounds the exponential backoff DequeueWait uses while the
// queue is empty: after a brief spin the waiter sleeps min, doubling up to
// max. Zero values select the defaults (4 µs and 1 ms); max is raised to
// min if it is smaller. Lower bounds poll more aggressively (lower latency,
// more CPU while idle); higher bounds do the opposite.
func WithWaitBackoff(min, max time.Duration) Option {
	return func(c *core.Config) {
		c.WaitBackoffMin = min
		c.WaitBackoffMax = max
	}
}
