// Package lcrq is a fast, linearizable, nonblocking multi-producer
// multi-consumer FIFO queue for Go, reproducing
//
//	Adam Morrison and Yehuda Afek. Fast Concurrent Queues for x86
//	Processors. PPoPP 2013.
//
// The queue spreads contending threads across the cells of ring segments
// using fetch-and-add — which always succeeds — and synchronizes within a
// cell using a double-width compare-and-swap (LOCK CMPXCHG16B on amd64),
// avoiding the wasted work of CAS retry loops that melts down CAS-based
// queues under contention.
//
// # Usage
//
// Operations go through per-thread handles, which carry hazard-pointer
// records and instrumentation:
//
//	q := lcrq.New()
//	h := q.NewHandle()        // one per goroutine, Release when done
//	h.Enqueue(42)
//	v, ok := h.Dequeue()
//
// Handle-free convenience methods (Queue.Enqueue / Queue.Dequeue) borrow a
// handle from an internal pool; they cost one pool round-trip per call and
// are intended for casual use, not benchmarks.
//
// The raw queue carries uint64 values and reserves one bit pattern
// (lcrq.Reserved) to mark empty cells. Typed[T] wraps the queue with a
// slot-arena so arbitrary Go values — including pointers, which stay
// visible to the garbage collector — can be queued.
package lcrq

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/core"
	"lcrq/internal/telemetry"
)

// Reserved is the single uint64 value that cannot be stored in a raw Queue.
// Enqueueing it panics. Use Typed to lift the restriction.
const Reserved = core.Bottom

// ErrClosed is returned by DequeueWait once the queue has been closed and
// fully drained: no value is coming, ever.
var ErrClosed = errors.New("lcrq: queue closed")

// ErrFull is returned by TryEnqueue when a bounded queue (WithCapacity /
// WithMaxRings) has no item or ring budget left. The value was not
// enqueued; EnqueueWait retries instead of returning it.
var ErrFull = errors.New("lcrq: queue full")

// ErrEmpty reports that the queue held no value. It is never returned on
// its own: DequeueWait wraps it (with the context error) in a WaitError
// when its context ends while the queue is still empty.
var ErrEmpty = errors.New("lcrq: queue empty")

// A WaitError is returned by EnqueueWait and DequeueWait when their context
// ends before the queue lets the operation through. It wraps both the queue
// state that forced the wait (ErrFull for EnqueueWait, ErrEmpty for
// DequeueWait — what the last poll observed) and the context's own error,
// so callers can split the cases with errors.Is:
//
//	errors.Is(err, lcrq.ErrFull) && errors.Is(err, context.DeadlineExceeded)
//	    // the queue stayed full for the whole deadline → backpressure;
//	    // retry later (a server maps this to 429 + Retry-After)
//	errors.Is(err, context.Canceled)
//	    // the caller gave up → not a queue condition at all
//
// Plain errors.Is(err, context.DeadlineExceeded) keeps working as before
// the wrapper existed.
type WaitError struct {
	State error // ErrFull or ErrEmpty: the queue at the last poll
	Cause error // the context error: context.Canceled or context.DeadlineExceeded
}

func (e *WaitError) Error() string { return e.State.Error() + ": " + e.Cause.Error() }

// Unwrap exposes both the queue-state sentinel and the context error to
// errors.Is / errors.As.
func (e *WaitError) Unwrap() []error { return []error{e.State, e.Cause} }

// Queue is a nonblocking MPMC FIFO queue of uint64 values, unbounded by
// default and bounded with WithCapacity / WithMaxRings. All methods are
// safe for concurrent use.
type Queue struct {
	q    *core.LCRQ
	tel  *telemetry.Sink // nil unless WithTelemetry / WithLatencySampling
	wd   *watchdog       // nil unless WithWatchdog
	pool sync.Pool       // spare *Handle for the convenience methods
}

// New returns an empty queue. With no options the queue uses rings of
// 2^12 cells, cache-line-padded cells, hardware fetch-and-add, and
// hazard-pointer ring recycling.
func New(opts ...Option) *Queue {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	q := &Queue{}
	if cfg.Telemetry {
		n := cfg.LatencySampleN
		if n == 0 {
			n = core.DefaultLatencySampleN
		}
		q.tel = telemetry.New(n, 0)
		cfg.Tap = q.tel
		if cfg.TraceSampleN != 0 {
			// The sink aggregates sampled item sojourns (histogram + recent
			// traces) exactly as it does latency and lifecycle events.
			cfg.TraceTap = q.tel
		}
	}
	q.q = core.NewLCRQ(cfg)
	q.pool.New = func() any {
		h := q.NewHandle()
		// Pooled handles have no owner to Release them; if the pool drops
		// one under GC pressure, the finalizer returns its reclamation
		// record to the queue's domain instead of leaking it.
		runtime.SetFinalizer(h, (*Handle).Release)
		return h
	}
	if wd := q.q.Config().Watchdog; wd > 0 {
		q.wd = startWatchdog(q, wd)
	}
	return q
}

// Handle is a per-goroutine operation context. A Handle must not be used
// concurrently; create one per worker and Release it when the worker exits.
type Handle struct {
	h   *core.Handle
	q   *Queue
	tel *telemetry.Rec // nil unless the queue has telemetry enabled
}

// NewHandle returns a handle bound to q.
func (q *Queue) NewHandle() *Handle {
	h := &Handle{h: q.q.NewHandle(), q: q}
	if q.tel != nil {
		h.tel = q.tel.Register(&h.h.C)
	}
	return h
}

// SetCluster records the hardware cluster (processor package) the owning
// thread runs on, which the hierarchical variant (WithHierarchical) uses to
// batch operations by cluster. Harmless to leave at 0 otherwise.
func (h *Handle) SetCluster(cluster int) { h.h.Cluster = int64(cluster) }

// Enqueue appends v to the queue and reports whether it was accepted: ok is
// false once the queue has been closed, or — on a bounded queue — when the
// item or ring budget is exhausted (use TryEnqueue to distinguish the two,
// or EnqueueWait to block for budget). v must not equal Reserved.
//
// Without telemetry the only addition over the core operation is the nil
// check on h.tel — the same "dead branch on the fast path" shape as the
// chaos layer's no-ops — so a telemetry-free queue pays nothing for the
// feature's existence (BenchmarkEnqueueDequeue quantifies this).
func (h *Handle) Enqueue(v uint64) (ok bool) {
	if h.tel == nil {
		return h.q.q.Enqueue(h.h, v)
	}
	return h.enqueueTel(v)
}

// TryEnqueue appends v to the queue, reporting exactly why when it cannot:
// ErrClosed after Close, ErrFull when a bounded queue has no budget left.
// It never blocks. v must not equal Reserved.
func (h *Handle) TryEnqueue(v uint64) error {
	switch h.enqueueStatus(v) {
	case core.EnqOK:
		return nil
	case core.EnqFull:
		return ErrFull
	default:
		return ErrClosed
	}
}

// enqueueStatus is one bounded-aware enqueue attempt, with the same
// telemetry treatment as Enqueue (rejected attempts feed the enqueue
// latency series like empty polls feed the dequeue one).
func (h *Handle) enqueueStatus(v uint64) core.EnqStatus {
	r := h.tel
	if r == nil {
		return h.q.q.EnqueueStatus(h.h, v)
	}
	if r.Arm() {
		t0 := time.Now()
		st := h.q.q.EnqueueStatus(h.h, v)
		r.Lat(telemetry.KindEnqueue, time.Since(t0))
		r.Tick()
		return st
	}
	st := h.q.q.EnqueueStatus(h.h, v)
	r.Tick()
	return st
}

// EnqueueWait blocks until a bounded queue accepts v. It fails with
// ErrClosed once the queue has been closed, or with a *WaitError wrapping
// ErrFull and ctx.Err() when ctx is done first (errors.Is matches both, so
// "full for the whole deadline" and caller cancellation stay
// distinguishable); on error v was not enqueued. A nil ctx waits without
// cancellation. On an unbounded queue it is equivalent to Enqueue and never
// blocks.
//
// Waiting mirrors DequeueWait: a brief spin, then bounded exponential
// backoff sleeps (WithWaitBackoff), so a blocked producer costs no CPU
// while the queue stays full but reacts quickly when a consumer frees
// budget. Fairness among blocked producers is not guaranteed — whichever
// waiter polls first after budget frees wins, as with any nonblocking
// queue's CAS races.
func (h *Handle) EnqueueWait(ctx context.Context, v uint64) error {
	if r := h.tel; r != nil && r.Arm() {
		// The enqueue-wait series times the whole wait, sleeps included —
		// producer backpressure stall, not queue-operation cost.
		t0 := time.Now()
		err := h.enqueueWait(ctx, v)
		if err == nil {
			r.Lat(telemetry.KindEnqueueWait, time.Since(t0))
		}
		r.Tick()
		return err
	}
	return h.enqueueWait(ctx, v)
}

func (h *Handle) enqueueWait(ctx context.Context, v uint64) error {
	cfg := h.q.q.Config()
	// WaitStart resumes the remembered backoff level on an adaptive queue
	// (a producer parked moments ago starts near where it left off instead
	// of re-climbing from the floor); on a fixed queue it is just the floor.
	backoff := h.h.Ctl.WaitStart(cfg.WaitBackoffMin, cfg.WaitBackoffMax)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for spin := 0; ; spin++ {
		switch h.enqueueStatus(v) {
		case core.EnqOK:
			h.h.Ctl.WaitDone(cfg.WaitBackoffMin)
			return nil
		case core.EnqClosed:
			return ErrClosed
		}
		chaos.Delay(chaos.EnqWait)
		if done != nil {
			select {
			case <-done:
				return &WaitError{State: ErrFull, Cause: ctx.Err()}
			default:
			}
		}
		if spin < 8 {
			runtime.Gosched()
			continue
		}
		// Jittered sleep: waiters parked by the same full episode wake
		// dispersed over [backoff/2, 3·backoff/2] instead of stampeding the
		// capacity gate together.
		timer := time.NewTimer(h.h.Ctl.Jitter(backoff))
		if done != nil {
			select {
			case <-done:
				timer.Stop()
				return &WaitError{State: ErrFull, Cause: ctx.Err()}
			case <-timer.C:
			}
		} else {
			<-timer.C
		}
		backoff = h.h.Ctl.WaitGrow(backoff, cfg.WaitBackoffMax)
	}
}

// enqueueTel is the telemetry-enabled enqueue: it times the operation when
// the 1-in-N sampler arms and paces the handle's counter publication.
func (h *Handle) enqueueTel(v uint64) bool {
	r := h.tel
	if r.Arm() {
		t0 := time.Now()
		ok := h.q.q.Enqueue(h.h, v)
		r.Lat(telemetry.KindEnqueue, time.Since(t0))
		r.Tick()
		return ok
	}
	ok := h.q.q.Enqueue(h.h, v)
	r.Tick()
	return ok
}

// Dequeue removes and returns the oldest value; ok is false if the queue
// was observed empty.
func (h *Handle) Dequeue() (v uint64, ok bool) {
	if h.tel == nil {
		return h.q.q.Dequeue(h.h)
	}
	return h.dequeueTel()
}

// dequeueTel mirrors enqueueTel for the dequeue side.
func (h *Handle) dequeueTel() (uint64, bool) {
	r := h.tel
	if r.Arm() {
		t0 := time.Now()
		v, ok := h.q.q.Dequeue(h.h)
		r.Lat(telemetry.KindDequeue, time.Since(t0))
		r.Tick()
		return v, ok
	}
	v, ok := h.q.q.Dequeue(h.h)
	r.Tick()
	return v, ok
}

// EnqueueBatch appends the values of vs in order, reserving a block of
// consecutive ring cells with a single fetch-and-add instead of one per
// item, and returns how many values were accepted. The n accepted values
// linearize as n consecutive single enqueues by this handle; concurrent
// dequeuers observe them in vs order. On an unbounded, open queue the whole
// slice is always accepted (n == len(vs), err == nil). Otherwise n < len(vs)
// with ErrClosed once the queue has been closed, or ErrFull when a bounded
// queue's budget ran out — the first n values are in the queue either way,
// and vs[n:] was not enqueued. No value may equal Reserved.
func (h *Handle) EnqueueBatch(vs []uint64) (n int, err error) {
	n, st := h.q.q.EnqueueBatch(h.h, vs)
	if r := h.tel; r != nil {
		r.Batch(telemetry.BatchEnqueue, n)
		r.Tick()
	}
	switch {
	case n == len(vs):
		return n, nil
	case st == core.EnqClosed:
		return n, ErrClosed
	default:
		return n, ErrFull
	}
}

// DequeueBatch removes up to len(out) of the oldest values into out,
// reserving a block of consecutive ring cells with a single fetch-and-add
// instead of one per item, and returns how many values it wrote. The n
// values linearize as n consecutive single dequeues by this handle. A
// return of 0 means the queue was observed empty (out is untouched).
func (h *Handle) DequeueBatch(out []uint64) int {
	n := h.q.q.DequeueBatch(h.h, out)
	if r := h.tel; r != nil {
		r.Batch(telemetry.BatchDequeue, n)
		r.Tick()
	}
	return n
}

// DequeueWait blocks until a value is available and returns it. It fails
// with ErrClosed once the queue has been closed and drained, or with a
// *WaitError wrapping ErrEmpty and ctx.Err() when ctx is done first
// (errors.Is matches both); the returned value is meaningless on error. A
// nil ctx waits without cancellation.
//
// Waiting is a spin phase followed by bounded exponential backoff sleeps
// (see WithWaitBackoff), so an idle waiter costs no CPU while a busy queue
// is polled at full speed. Enqueues concurrent with Close may linearize on
// either side of it: a waiter that has already returned ErrClosed does not
// see items deposited by such stragglers (a later Dequeue or Drain does).
func (h *Handle) DequeueWait(ctx context.Context) (uint64, error) {
	if r := h.tel; r != nil && r.Arm() {
		// The dequeue-wait series times the whole wait, sleeps included —
		// it measures consumer stall, not queue-operation cost. The empty
		// polls inside still feed the dequeue series as ordinary dequeues.
		t0 := time.Now()
		v, err := h.dequeueWait(ctx)
		if err == nil {
			r.Lat(telemetry.KindDequeueWait, time.Since(t0))
		}
		r.Tick()
		return v, err
	}
	return h.dequeueWait(ctx)
}

func (h *Handle) dequeueWait(ctx context.Context) (uint64, error) {
	cfg := h.q.q.Config()
	// See enqueueWait: remembered level on adaptive queues, floor otherwise.
	backoff := h.h.Ctl.WaitStart(cfg.WaitBackoffMin, cfg.WaitBackoffMax)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for spin := 0; ; spin++ {
		// Read the closed flag before polling: observing (closed, then
		// empty) in that order proves the queue was drained, because no
		// enqueue that starts after Close can succeed.
		closed := h.q.q.Closed()
		if v, ok := h.Dequeue(); ok {
			h.h.Ctl.WaitDone(cfg.WaitBackoffMin)
			return v, nil
		}
		if closed {
			return 0, ErrClosed
		}
		if done != nil {
			select {
			case <-done:
				return 0, &WaitError{State: ErrEmpty, Cause: ctx.Err()}
			default:
			}
		}
		if spin < 8 {
			runtime.Gosched()
			continue
		}
		// Jittered sleep, as in enqueueWait: consumers parked on the same
		// empty queue wake dispersed instead of racing the first deposit.
		timer := time.NewTimer(h.h.Ctl.Jitter(backoff))
		if done != nil {
			select {
			case <-done:
				timer.Stop()
				return 0, &WaitError{State: ErrEmpty, Cause: ctx.Err()}
			case <-timer.C:
			}
		} else {
			<-timer.C
		}
		backoff = h.h.Ctl.WaitGrow(backoff, cfg.WaitBackoffMax)
	}
}

// Stats returns a snapshot of the operation statistics accumulated by this
// handle. Meaningful only while the owning goroutine is not mid-operation.
func (h *Handle) Stats() Stats { return statsFromCounters(&h.h.C) }

// Release returns the handle's resources (its hazard-pointer record) to the
// queue. The handle must not be used afterwards. With telemetry enabled the
// handle's final counter values are folded into the queue's retired totals,
// so released workers keep contributing to Metrics.
func (h *Handle) Release() {
	if h.tel != nil {
		h.q.tel.Unregister(h.tel)
		h.tel = nil
	}
	h.h.Release()
}

// Enqueue appends v using a pooled handle and reports whether it was
// accepted (false only after Close). v must not equal Reserved.
func (q *Queue) Enqueue(v uint64) (ok bool) {
	h := q.pool.Get().(*Handle)
	ok = h.Enqueue(v)
	q.pool.Put(h)
	return ok
}

// TryEnqueue appends v using a pooled handle, reporting ErrClosed or
// ErrFull when it cannot; see Handle.TryEnqueue.
func (q *Queue) TryEnqueue(v uint64) error {
	h := q.pool.Get().(*Handle)
	err := h.TryEnqueue(v)
	q.pool.Put(h)
	return err
}

// EnqueueWait blocks until a bounded queue accepts v, using a pooled
// handle; see Handle.EnqueueWait.
func (q *Queue) EnqueueWait(ctx context.Context, v uint64) error {
	h := q.pool.Get().(*Handle)
	err := h.EnqueueWait(ctx, v)
	q.pool.Put(h)
	return err
}

// Dequeue removes and returns the oldest value using a pooled handle.
func (q *Queue) Dequeue() (v uint64, ok bool) {
	h := q.pool.Get().(*Handle)
	v, ok = h.Dequeue()
	q.pool.Put(h)
	return v, ok
}

// DequeueWait blocks until a value is available, using a pooled handle; see
// Handle.DequeueWait. Note the pooled handle is held for the whole wait, so
// many concurrently blocked waiters grow the pool; dedicated consumers
// should own a Handle.
func (q *Queue) DequeueWait(ctx context.Context) (uint64, error) {
	h := q.pool.Get().(*Handle)
	v, err := h.DequeueWait(ctx)
	q.pool.Put(h)
	return v, err
}

// EnqueueBatch appends the values of vs using a pooled handle; see
// Handle.EnqueueBatch.
func (q *Queue) EnqueueBatch(vs []uint64) (n int, err error) {
	h := q.pool.Get().(*Handle)
	n, err = h.EnqueueBatch(vs)
	q.pool.Put(h)
	return n, err
}

// DequeueBatch removes up to len(out) values into out using a pooled
// handle; see Handle.DequeueBatch.
func (q *Queue) DequeueBatch(out []uint64) int {
	h := q.pool.Get().(*Handle)
	n := h.DequeueBatch(out)
	q.pool.Put(h)
	return n
}

// Close permanently closes the queue to new enqueues: Enqueue calls that
// begin after Close returns report false, while dequeues keep draining the
// items already queued and report empty once they are gone. Operations
// concurrent with Close may linearize on either side of it. Close is
// idempotent and safe to call concurrently with all other operations.
func (q *Queue) Close() {
	if q.wd != nil {
		q.wd.stop()
	}
	h := q.pool.Get().(*Handle)
	q.q.Close(h.h)
	q.pool.Put(h)
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool { return q.q.Closed() }

// Drain repeatedly dequeues until the queue reports empty, invoking fn for
// each value, and returns the number of values drained. Concurrent
// enqueuers may keep it busy indefinitely; Drain is meant for shutdown
// paths — typically after Close, or once producers have stopped.
func (q *Queue) Drain(fn func(uint64)) int {
	h := q.pool.Get().(*Handle)
	defer q.pool.Put(h)
	n := 0
	for {
		v, ok := h.Dequeue()
		if !ok {
			return n
		}
		if fn != nil {
			fn(v)
		}
		n++
	}
}
