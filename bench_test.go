package lcrq

// One testing.B benchmark per table and figure of the paper, plus ablation
// benches for the design choices called out in DESIGN.md §5. These run at
// reduced scale so `go test -bench=.` finishes in minutes; the cmd/qbench
// and cmd/reproduce drivers regenerate the full figures.
//
// Throughput benches report the harness-measured "Mops" metric alongside
// the standard ns/op; for figure benches ns/op includes queue construction,
// which the Mops metric excludes.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"lcrq/internal/core"
	"lcrq/internal/counter"
	"lcrq/internal/harness"
)

// benchThreads is the thread axis used by the scaled-down figure benches.
var benchThreads = []int{1, 2, 4, 8}

// runWorkload adapts a harness workload to testing.B: the total operation
// count tracks b.N so the reported ns/op is meaningful.
func runWorkload(b *testing.B, w harness.Workload) {
	b.Helper()
	pairs := b.N / (2 * w.Threads)
	if pairs < 1 {
		pairs = 1
	}
	w.Pairs = pairs
	w.Runs = 1
	r, err := harness.Run(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.Mops.Mean(), "Mops")
}

// BenchmarkFigure1 measures the contended-counter increment cost with F&A
// and with a CAS loop (Figure 1).
func BenchmarkFigure1(b *testing.B) {
	for _, mode := range []counter.Mode{counter.FAA, counter.CASLoop} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("mode=%s/threads=%d", mode, threads), func(b *testing.B) {
				incs := b.N / threads
				if incs < 1 {
					incs = 1
				}
				r := counter.Run(mode, threads, incs, false)
				b.ReportMetric(r.NsPerInc, "ns/inc")
				if mode == counter.CASLoop {
					b.ReportMetric(r.CASPerInc, "CAS/inc")
				}
			})
		}
	}
}

func benchFigure(b *testing.B, figID string) {
	spec := harness.Figures()[figID]
	for _, q := range spec.Queues {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("queue=%s/threads=%d", q, threads), func(b *testing.B) {
				runWorkload(b, harness.Workload{
					Queue:     q,
					Threads:   threads,
					Prefill:   spec.Prefill,
					MaxDelay:  spec.MaxDelay,
					Placement: spec.Placement,
					Clusters:  spec.Clusters,
				})
			})
		}
	}
}

// BenchmarkFigure6a: single-processor throughput, queue initially empty.
func BenchmarkFigure6a(b *testing.B) { benchFigure(b, "6a") }

// BenchmarkFigure6b: oversubscription — threads beyond the hardware level.
func BenchmarkFigure6b(b *testing.B) {
	spec := harness.Figures()["6b"]
	for _, q := range spec.Queues {
		for _, mult := range []int{2, 4} {
			threads := mult * maxHW()
			b.Run(fmt.Sprintf("queue=%s/threads=%d", q, threads), func(b *testing.B) {
				runWorkload(b, harness.Workload{
					Queue:     q,
					Threads:   threads,
					MaxDelay:  spec.MaxDelay,
					Placement: spec.Placement,
				})
			})
		}
	}
}

// BenchmarkFigure7a: round-robin placement, queue pre-filled with 2^16.
func BenchmarkFigure7a(b *testing.B) { benchFigure(b, "7a") }

// BenchmarkFigure7b: round-robin placement, queue initially empty.
func BenchmarkFigure7b(b *testing.B) { benchFigure(b, "7b") }

// BenchmarkFigure8 samples operation latency and reports tail quantiles
// (the data behind the Figure 8 CDFs).
func BenchmarkFigure8(b *testing.B) {
	for _, id := range []string{"8a", "8b"} {
		spec := harness.LatencyFigures()[id]
		for _, q := range spec.Queues {
			b.Run(fmt.Sprintf("fig=%s/queue=%s", id, q), func(b *testing.B) {
				threads := min(spec.Threads, 4*maxHW())
				pairs := b.N / (2 * threads)
				if pairs < 10 {
					pairs = 10
				}
				r, err := harness.Run(harness.Workload{
					Queue: q, Threads: threads, Pairs: pairs,
					MaxDelay: spec.MaxDelay, Placement: spec.Placement,
					Clusters: spec.Clusters, Runs: 1, LatencySample: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Hist.Quantile(0.5)), "p50-ns")
				b.ReportMetric(float64(r.Hist.Quantile(0.97)), "p97-ns")
			})
		}
	}
}

// BenchmarkFigure9 sweeps the CRQ ring size (Figure 9).
func BenchmarkFigure9(b *testing.B) {
	for _, order := range []int{3, 5, 7, 9, 12, 15, 17} {
		b.Run(fmt.Sprintf("ring=2^%d", order), func(b *testing.B) {
			runWorkload(b, harness.Workload{
				Queue: "lcrq", Threads: 4, MaxDelay: 100,
				Placement: harness.SingleCluster, RingOrder: order,
			})
		})
	}
}

// BenchmarkTable2 exercises the Table 2 configurations (per-op statistics
// are printed by `qbench -table 2`; here we track the throughput side).
func BenchmarkTable2(b *testing.B) {
	spec := harness.Tables()["2"]
	for _, q := range spec.Queues {
		for _, threads := range []int{1, min(20, 4*maxHW())} {
			b.Run(fmt.Sprintf("queue=%s/threads=%d", q, threads), func(b *testing.B) {
				runWorkload(b, harness.Workload{
					Queue: q, Threads: threads, MaxDelay: spec.MaxDelay,
					Placement: spec.Placement,
				})
			})
		}
	}
}

// BenchmarkTable3 exercises the Table 3 configurations (empty vs full).
func BenchmarkTable3(b *testing.B) {
	spec := harness.Tables()["3"]
	threads := min(80, 4*maxHW())
	for _, q := range spec.Queues {
		for _, prefill := range spec.Prefills {
			name := "empty"
			if prefill > 0 {
				name = "full"
			}
			b.Run(fmt.Sprintf("queue=%s/%s", q, name), func(b *testing.B) {
				runWorkload(b, harness.Workload{
					Queue: q, Threads: threads, Prefill: prefill,
					MaxDelay: spec.MaxDelay, Placement: spec.Placement,
					Clusters: spec.Clusters,
				})
			})
		}
	}
}

// ---- ablation benches (DESIGN.md §5) ----

// coreBenchParallel drives a core.LCRQ from b.RunParallel workers.
func coreBenchParallel(b *testing.B, cfg core.Config) {
	q := core.NewLCRQ(cfg)
	var ids atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		defer h.Release()
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}

// BenchmarkAblationPadding compares cache-line-padded ring cells (the
// paper's layout) against densely packed cells.
func BenchmarkAblationPadding(b *testing.B) {
	b.Run("padded", func(b *testing.B) { coreBenchParallel(b, core.Config{}) })
	b.Run("packed", func(b *testing.B) { coreBenchParallel(b, core.Config{NoPadding: true}) })
}

// BenchmarkAblationRecycle compares hazard-pointer ring recycling against
// GC-only reclamation, on a tiny ring that churns segments constantly.
func BenchmarkAblationRecycle(b *testing.B) {
	b.Run("recycle", func(b *testing.B) { coreBenchParallel(b, core.Config{RingOrder: 4}) })
	b.Run("gc-only", func(b *testing.B) { coreBenchParallel(b, core.Config{RingOrder: 4, NoRecycle: true}) })
}

// BenchmarkAblationSpin compares the bounded wait for a matching enqueuer
// (§4.1.1) against immediately poisoning the cell.
func BenchmarkAblationSpin(b *testing.B) {
	b.Run("spinwait", func(b *testing.B) { coreBenchParallel(b, core.Config{}) })
	b.Run("no-spinwait", func(b *testing.B) { coreBenchParallel(b, core.Config{SpinWait: -1}) })
}

// BenchmarkAblationReclamation compares the three safe-memory-reclamation
// schemes: the paper's hazard pointers, epoch-based reclamation, and
// GC-only (a Go-specific design point; see DESIGN.md §5). The first two
// are measured without recycling so only the protection cost differs from
// gc-only; the -churn variants measure the full retire/recycle path on a
// tiny ring.
func BenchmarkAblationReclamation(b *testing.B) {
	b.Run("hazard", func(b *testing.B) { coreBenchParallel(b, core.Config{NoRecycle: true}) })
	b.Run("epoch", func(b *testing.B) {
		coreBenchParallel(b, core.Config{Reclamation: core.ReclaimEpoch, NoRecycle: true})
	})
	b.Run("gc-only", func(b *testing.B) { coreBenchParallel(b, core.Config{NoHazard: true}) })
	b.Run("hazard-churn", func(b *testing.B) { coreBenchParallel(b, core.Config{RingOrder: 2}) })
	b.Run("epoch-churn", func(b *testing.B) {
		coreBenchParallel(b, core.Config{RingOrder: 2, Reclamation: core.ReclaimEpoch})
	})
	b.Run("gc-churn", func(b *testing.B) {
		coreBenchParallel(b, core.Config{RingOrder: 2, NoHazard: true})
	})
}

// BenchmarkAblationFAA compares hardware F&A against its CAS-loop emulation
// (LCRQ vs LCRQ-CAS) at the raw core level.
func BenchmarkAblationFAA(b *testing.B) {
	b.Run("faa", func(b *testing.B) { coreBenchParallel(b, core.Config{}) })
	b.Run("cas-loop", func(b *testing.B) { coreBenchParallel(b, core.Config{CASLoopFAA: true}) })
}

// BenchmarkAblationTyped measures the overhead of the Typed facade (slot
// arena + free list) over the raw uint64 queue.
func BenchmarkAblationTyped(b *testing.B) {
	b.Run("raw", func(b *testing.B) {
		q := New()
		b.RunParallel(func(pb *testing.PB) {
			h := q.NewHandle()
			defer h.Release()
			v := uint64(0)
			for pb.Next() {
				v++
				h.Enqueue(v)
				h.Dequeue()
			}
		})
	})
	b.Run("typed", func(b *testing.B) {
		q := NewTyped[uint64]()
		b.RunParallel(func(pb *testing.PB) {
			h := q.NewHandle()
			defer h.Release()
			v := uint64(0)
			for pb.Next() {
				v++
				h.Enqueue(v)
				h.Dequeue()
			}
		})
	})
	b.Run("pooled-convenience", func(b *testing.B) {
		q := New()
		b.RunParallel(func(pb *testing.PB) {
			v := uint64(0)
			for pb.Next() {
				v++
				q.Enqueue(v)
				q.Dequeue()
			}
		})
	})
}

// BenchmarkChannelComparison pits the raw queue against a buffered Go
// channel on the same enqueue/dequeue-pair workload (not a figure from the
// paper — a baseline Go readers expect; note the semantics differ: channel
// receive blocks where Dequeue returns EMPTY).
func BenchmarkChannelComparison(b *testing.B) {
	b.Run("lcrq", func(b *testing.B) {
		q := New()
		b.RunParallel(func(pb *testing.PB) {
			h := q.NewHandle()
			defer h.Release()
			v := uint64(0)
			for pb.Next() {
				v++
				h.Enqueue(v)
				h.Dequeue()
			}
		})
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan uint64, 1<<16)
		b.RunParallel(func(pb *testing.PB) {
			v := uint64(0)
			for pb.Next() {
				v++
				ch <- v
				select {
				case <-ch:
				default:
				}
			}
		})
	})
}

// BenchmarkUncontended measures the single-threaded fast path of every
// public entry point.
func BenchmarkUncontended(b *testing.B) {
	b.Run("handle", func(b *testing.B) {
		q := New()
		h := q.NewHandle()
		defer h.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i))
			h.Dequeue()
		}
	})
	b.Run("typed-handle", func(b *testing.B) {
		q := NewTyped[int]()
		h := q.NewHandle()
		defer h.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Enqueue(i)
			h.Dequeue()
		}
	})
}

func maxHW() int {
	if n := runtime.NumCPU(); n > 0 {
		return n
	}
	return 1
}

// BenchmarkEnqueueDequeue measures the telemetry layer's fast-path cost:
// "off" is the default build (nil-check only), "on" enables counters with
// the default 1-in-1024 latency sampling, and "sampled-64" exaggerates the
// sampling rate 16×. Compare off against historical numbers (or against
// BenchmarkUncontended/handle) to confirm the disabled layer is free.
func BenchmarkEnqueueDequeue(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"off", nil},
		{"on", []Option{WithTelemetry()}},
		{"sampled-64", []Option{WithLatencySampling(64)}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			q := New(tc.opts...)
			h := q.NewHandle()
			defer h.Release()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Enqueue(uint64(i))
				h.Dequeue()
			}
		})
		b.Run(tc.name+"-parallel", func(b *testing.B) {
			q := New(tc.opts...)
			b.RunParallel(func(pb *testing.PB) {
				h := q.NewHandle()
				defer h.Release()
				var i uint64
				for pb.Next() {
					h.Enqueue(i)
					h.Dequeue()
					i++
				}
			})
		})
	}
}
