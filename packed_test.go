package lcrq

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPacked32Basic(t *testing.T) {
	q := NewPacked32(0)
	h := q.NewHandle()
	defer h.Release()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint32(0); i < 200; i++ {
		h.Enqueue(i)
	}
	for i := uint32(0); i < 200; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
}

func TestPacked32DefaultOrder(t *testing.T) {
	q := NewPacked32(0)
	h := q.NewHandle()
	defer h.Release()
	// 2^12 default geometry: 5000 items must not need a segment append.
	for i := uint32(0); i < 4000; i++ {
		h.Enqueue(i)
	}
	if s := h.Stats(); s.RingAppends != 0 {
		t.Fatalf("default-order queue appended %d segments for 4000 items", s.RingAppends)
	}
}

func TestPacked32ReservedPanics(t *testing.T) {
	q := NewPacked32(4)
	h := q.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Enqueue(Reserved32)
}

func TestPacked32StatsWired(t *testing.T) {
	q := NewPacked32(2)
	h := q.NewHandle()
	for i := uint32(0); i < 100; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		h.Dequeue()
	}
	s := h.Stats()
	if s.Enqueues != 100 || s.Dequeues != 100 {
		t.Fatalf("stats: %+v", s)
	}
	if s.FetchAdds == 0 || s.RingAppends == 0 {
		t.Fatalf("tiny ring should append segments: %+v", s)
	}
}

func TestPacked32Concurrent(t *testing.T) {
	q := NewPacked32(4)
	const producers, consumers, per = 4, 4, 3000
	var wg sync.WaitGroup
	var count atomic.Int64
	var got sync.Map
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue(uint32(p)<<16 | uint32(i))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for count.Load() < producers*per {
				if v, ok := h.Dequeue(); ok {
					if _, dup := got.LoadOrStore(v, true); dup {
						t.Errorf("duplicate %#x", v)
						return
					}
					count.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if count.Load() != producers*per {
		t.Fatalf("consumed %d, want %d", count.Load(), producers*per)
	}
}
