package lcrq

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestQueueCloseDrain covers the advertised drain semantics on the raw
// queue: enqueues after Close fail, queued items drain in FIFO order, and
// the drained queue stays empty.
func TestQueueCloseDrain(t *testing.T) {
	q := New(WithRingSize(4)) // several segments for 32 items
	for i := uint64(1); i <= 32; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d rejected before close", i)
		}
	}
	if q.Closed() {
		t.Fatal("Closed() true before Close")
	}
	q.Close()
	q.Close() // idempotent
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue accepted after close")
	}
	want := uint64(1)
	n := q.Drain(func(v uint64) {
		if v != want {
			t.Fatalf("drain got %d, want %d", v, want)
		}
		want++
	})
	if n != 32 {
		t.Fatalf("drained %d items, want 32", n)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned a value")
	}
}

// TestDequeueWaitDelivers checks that a blocked waiter receives a value
// enqueued later, without cancellation getting involved.
func TestDequeueWaitDelivers(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Enqueue(42)
	}()
	v, err := h.DequeueWait(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("DequeueWait = (%d, %v), want (42, nil)", v, err)
	}
}

// TestDequeueWaitNilContext checks the documented nil-ctx form.
func TestDequeueWaitNilContext(t *testing.T) {
	q := New()
	q.Enqueue(7)
	h := q.NewHandle()
	defer h.Release()
	v, err := h.DequeueWait(nil)
	if err != nil || v != 7 {
		t.Fatalf("DequeueWait(nil) = (%d, %v), want (7, nil)", v, err)
	}
}

// TestDequeueWaitCancellation checks both cancellation shapes: an already
// cancelled context and a deadline that expires mid-wait.
func TestDequeueWaitCancellation(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.DequeueWait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v, want Canceled", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := h.DequeueWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline ctx: err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DequeueWait took %v to honour a 10ms deadline", elapsed)
	}
}

// TestDequeueWaitDrainsThenErrClosed checks the shutdown contract: waiters
// receive every queued item, then ErrClosed, never an indefinite block.
func TestDequeueWaitDrainsThenErrClosed(t *testing.T) {
	q := New(WithRingSize(2))
	for i := uint64(1); i <= 8; i++ {
		q.Enqueue(i)
	}
	q.Close()
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(1); i <= 8; i++ {
		v, err := h.DequeueWait(context.Background())
		if err != nil || v != i {
			t.Fatalf("drain via DequeueWait = (%d, %v), want (%d, nil)", v, err, i)
		}
	}
	if _, err := h.DequeueWait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed queue: err = %v, want ErrClosed", err)
	}
}

// TestDequeueWaitUnblocksOnClose parks waiters on an empty queue and then
// closes it: every waiter must return ErrClosed promptly.
func TestDequeueWaitUnblocksOnClose(t *testing.T) {
	q := New()
	const waiters = 4
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			_, err := h.DequeueWait(context.Background())
			errs <- err
		}()
	}
	time.Sleep(2 * time.Millisecond) // let the waiters park
	q.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter returned %v, want ErrClosed", err)
		}
	}
}

// TestTypedCloseAndDequeueWait exercises the same lifecycle through the
// typed facade, including slot recycling of a rejected enqueue.
func TestTypedCloseAndDequeueWait(t *testing.T) {
	q := NewTyped[string](WithRingSize(4))
	h := q.NewHandle()
	defer h.Release()
	if !h.Enqueue("a") || !h.Enqueue("b") {
		t.Fatal("enqueue rejected before close")
	}
	q.Close()
	if q.Enqueue("c") {
		t.Fatal("typed enqueue accepted after close")
	}
	for _, want := range []string{"a", "b"} {
		v, err := h.DequeueWait(context.Background())
		if err != nil || v != want {
			t.Fatalf("typed DequeueWait = (%q, %v), want (%q, nil)", v, err, want)
		}
	}
	if _, err := h.DequeueWait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("typed drained: err = %v, want ErrClosed", err)
	}
	if !q.Closed() {
		t.Fatal("typed Closed() false after Close")
	}
}

// TestWithWaitBackoff verifies the option plumbs through to the normalized
// configuration (white-box: same package).
func TestWithWaitBackoff(t *testing.T) {
	q := New(WithWaitBackoff(2*time.Microsecond, 500*time.Microsecond))
	cfg := q.q.Config()
	if cfg.WaitBackoffMin != 2*time.Microsecond || cfg.WaitBackoffMax != 500*time.Microsecond {
		t.Fatalf("backoff = (%v, %v), want (2µs, 500µs)", cfg.WaitBackoffMin, cfg.WaitBackoffMax)
	}
	// max below min is raised to min rather than inverting the range.
	q = New(WithWaitBackoff(time.Millisecond, time.Microsecond))
	cfg = q.q.Config()
	if cfg.WaitBackoffMax != cfg.WaitBackoffMin {
		t.Fatalf("inverted range not normalized: (%v, %v)", cfg.WaitBackoffMin, cfg.WaitBackoffMax)
	}
}

// TestDoubleReleasePanicsPublic pins the public-facing double-release
// guard: the panic must surface through the facade with a clear message.
func TestDoubleReleasePanicsPublic(t *testing.T) {
	q := New()
	h := q.NewHandle()
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release through the public API did not panic")
		}
	}()
	h.Release()
}
