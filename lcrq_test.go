package lcrq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueBasic(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 100; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
}

func TestQueueZeroValueAllowed(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	h.Enqueue(0)
	if v, ok := h.Dequeue(); !ok || v != 0 {
		t.Fatalf("got (%d,%v), want (0,true)", v, ok)
	}
}

func TestQueueReservedPanics(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Enqueue(Reserved)
}

func TestQueueConvenienceMethods(t *testing.T) {
	q := New(WithRingSize(64))
	q.Enqueue(1)
	q.Enqueue(2)
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != 2 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueDrain(t *testing.T) {
	q := New()
	for i := uint64(0); i < 50; i++ {
		q.Enqueue(i)
	}
	var sum uint64
	n := q.Drain(func(v uint64) { sum += v })
	if n != 50 || sum != 49*50/2 {
		t.Fatalf("Drain = %d (sum %d)", n, sum)
	}
	if q.Drain(nil) != 0 {
		t.Fatal("second drain should find nothing")
	}
}

func TestOptionsApply(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"ring size", []Option{WithRingSize(100)}}, // rounds to 128
		{"ring order", []Option{WithRingOrder(5)}},
		{"cas loop", []Option{WithCASLoopFAA()}},
		{"hierarchical", []Option{WithHierarchical(time.Millisecond)}},
		{"no padding", []Option{WithoutPadding()}},
		{"no recycling", []Option{WithoutRecycling()}},
		{"no hazard", []Option{WithoutHazardPointers(), WithRingSize(8)}},
		{"epoch", []Option{WithEpochReclamation(), WithRingSize(8)}},
		{"spin", []Option{WithSpinWait(3)}},
		{"starvation", []Option{WithStarvationLimit(5)}},
		{"tiny ring", []Option{WithRingSize(1)}}, // clamps to 2
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := New(c.opts...)
			h := q.NewHandle()
			defer h.Release()
			for i := uint64(0); i < 300; i++ {
				h.Enqueue(i)
			}
			for i := uint64(0); i < 300; i++ {
				v, ok := h.Dequeue()
				if !ok || v != i {
					t.Fatalf("got (%d,%v), want %d", v, ok, i)
				}
			}
		})
	}
}

func TestStatsSnapshot(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(0); i < 10; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 12; i++ {
		h.Dequeue()
	}
	s := h.Stats()
	if s.Enqueues != 10 || s.Dequeues != 12 || s.Empty != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if s.FetchAdds == 0 || s.CAS2Attempts == 0 {
		t.Fatalf("instruction counts empty: %+v", s)
	}
	if s.AtomicsPerOp <= 0 {
		t.Fatalf("AtomicsPerOp = %v", s.AtomicsPerOp)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Enqueues: 2, Dequeues: 2, AtomicsPerOp: 2, FetchAdds: 8}
	b := Stats{Enqueues: 6, Dequeues: 6, AtomicsPerOp: 4, FetchAdds: 48}
	c := a.Add(b)
	if c.Enqueues != 8 || c.FetchAdds != 56 {
		t.Fatalf("sum: %+v", c)
	}
	// Weighted average: (2*4 + 4*12)/16 = 3.5
	if c.AtomicsPerOp != 3.5 {
		t.Fatalf("AtomicsPerOp = %v, want 3.5", c.AtomicsPerOp)
	}
	var zero Stats
	if z := zero.Add(zero); z.AtomicsPerOp != 0 {
		t.Fatal("zero add produced nonzero average")
	}
}

func TestPooledHandlesSurviveGC(t *testing.T) {
	q := New(WithRingSize(64))
	// Interleave pooled convenience calls with forced GCs: dropped pool
	// entries run their finalizers (releasing reclamation records) and the
	// queue must stay fully functional.
	for round := uint64(0); round < 10; round++ {
		for i := uint64(0); i < 100; i++ {
			q.Enqueue(round*1000 + i)
		}
		runtime.GC()
		for i := uint64(0); i < 100; i++ {
			if _, ok := q.Dequeue(); !ok {
				t.Fatalf("round %d: lost value %d", round, i)
			}
		}
		runtime.GC()
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
	// Double release is a guarded bug: the second call must panic (see
	// TestDoubleReleasePanicsPublic) rather than hand the reclamation
	// record out twice. Pooled handles are never explicitly released, so
	// their finalizer-driven Release runs at most once.
	h := q.NewHandle()
	h.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Release did not panic")
			}
		}()
		h.Release()
	}()
}

func TestQueueConcurrentSmoke(t *testing.T) {
	q := New(WithRingSize(64))
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	var consumed atomic.Int64
	var sum atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue(uint64(w*per+i) + 1)
				if v, ok := h.Dequeue(); ok {
					sum.Add(v)
					consumed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rest := q.Drain(func(v uint64) { sum.Add(v); consumed.Add(1) })
	_ = rest
	if consumed.Load() != workers*per {
		t.Fatalf("consumed %d, want %d", consumed.Load(), workers*per)
	}
	n := uint64(workers * per)
	if sum.Load() != n*(n+1)/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), n*(n+1)/2)
	}
}

func TestTypedBasic(t *testing.T) {
	type item struct {
		s string
		n int
	}
	q := NewTyped[item](WithRingSize(16))
	h := q.NewHandle()
	defer h.Release()
	h.Enqueue(item{"a", 1})
	h.Enqueue(item{"b", 2})
	v, ok := h.Dequeue()
	if !ok || v.s != "a" || v.n != 1 {
		t.Fatalf("got (%+v,%v)", v, ok)
	}
	v, ok = h.Dequeue()
	if !ok || v.s != "b" {
		t.Fatalf("got (%+v,%v)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("typed queue should be empty")
	}
}

func TestTypedPointersAndZeroing(t *testing.T) {
	q := NewTyped[*int]()
	h := q.NewHandle()
	defer h.Release()
	x := 7
	h.Enqueue(&x)
	p, ok := h.Dequeue()
	if !ok || p == nil || *p != 7 {
		t.Fatal("pointer round trip failed")
	}
	// The slot must have been zeroed so the arena does not retain *x.
	idx := uint64(0) // first slot handed out
	if got := *q.slot(idx); got != nil {
		t.Fatal("slot not cleared after dequeue")
	}
}

func TestTypedGrowth(t *testing.T) {
	q := NewTyped[int](WithRingSize(1 << 14))
	h := q.NewHandle()
	defer h.Release()
	const n = 3 * chunkSize // forces multiple arena growths
	for i := 0; i < n; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if len(*q.arr.Load()) < 3 {
		t.Fatalf("arena has %d chunks, want >= 3", len(*q.arr.Load()))
	}
}

func TestTypedSlotReuse(t *testing.T) {
	q := NewTyped[int]()
	h := q.NewHandle()
	defer h.Release()
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			h.Enqueue(round*1000 + i)
		}
		for i := 0; i < 100; i++ {
			v, ok := h.Dequeue()
			if !ok || v != round*1000+i {
				t.Fatalf("round %d: got (%d,%v)", round, v, ok)
			}
		}
	}
	// Steady state must not have grown beyond one chunk.
	if len(*q.arr.Load()) != 1 {
		t.Fatalf("arena grew to %d chunks for a 100-item working set", len(*q.arr.Load()))
	}
}

func TestTypedConvenience(t *testing.T) {
	q := NewTyped[string]()
	q.Enqueue("x")
	if v, ok := q.Dequeue(); !ok || v != "x" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("should be empty")
	}
}

func TestTypedConcurrent(t *testing.T) {
	q := NewTyped[[2]uint32](WithRingSize(256))
	const producers, consumers, per = 4, 4, 3000
	var wg, pwg sync.WaitGroup
	pwg.Add(producers)
	var got sync.Map
	var count atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer pwg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue([2]uint32{uint32(p), uint32(i)})
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for count.Load() < producers*per {
				if v, ok := h.Dequeue(); ok {
					if _, dup := got.LoadOrStore(v, true); dup {
						t.Errorf("duplicate value %v", v)
						return
					}
					count.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if count.Load() != producers*per {
		t.Fatalf("consumed %d, want %d", count.Load(), producers*per)
	}
}

func TestQueueQuickFIFO(t *testing.T) {
	f := func(vals []uint32, deqPattern []bool) bool {
		q := New(WithRingSize(8))
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		vi := 0
		for _, deq := range deqPattern {
			if deq || vi >= len(vals) {
				v, ok := h.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			} else {
				h.Enqueue(uint64(vals[vi]))
				model = append(model, uint64(vals[vi]))
				vi++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
