module lcrq

go 1.24
