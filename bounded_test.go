package lcrq

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// TestTryEnqueueBackpressure exercises the non-blocking bounded contract at
// the public surface: accept up to capacity, ErrFull at the bound, writable
// again after a dequeue, ErrClosed after close.
func TestTryEnqueueBackpressure(t *testing.T) {
	q := New(WithCapacity(3))
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(1); i <= 3; i++ {
		if err := h.TryEnqueue(i); err != nil {
			t.Fatalf("TryEnqueue(%d) = %v", i, err)
		}
	}
	if err := h.TryEnqueue(4); !errors.Is(err, ErrFull) {
		t.Fatalf("TryEnqueue at capacity = %v, want ErrFull", err)
	}
	m := q.Metrics()
	if m.Capacity != 3 || m.Items != 3 || m.CapacityRejects == 0 {
		t.Fatalf("Metrics = {Capacity:%d Items:%d CapacityRejects:%d}, want {3 3 >0}",
			m.Capacity, m.Items, m.CapacityRejects)
	}
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%v), want (1,true)", v, ok)
	}
	if err := h.TryEnqueue(4); err != nil {
		t.Fatalf("TryEnqueue after freeing a slot = %v", err)
	}
	q.Close()
	if err := h.TryEnqueue(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryEnqueue after close = %v, want ErrClosed", err)
	}
	// The pooled variant agrees.
	if err := q.TryEnqueue(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Queue.TryEnqueue after close = %v, want ErrClosed", err)
	}
}

// TestEnqueueWaitUnblocks: a producer blocked on a full queue must complete
// as soon as a consumer frees a slot, and the released value must preserve
// FIFO order relative to the items already in flight.
func TestEnqueueWaitUnblocks(t *testing.T) {
	q := New(WithCapacity(1), WithWaitBackoff(time.Microsecond, 50*time.Microsecond))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ph := q.NewHandle()
		defer ph.Release()
		done <- ph.EnqueueWait(context.Background(), 2)
	}()
	select {
	case err := <-done:
		t.Fatalf("EnqueueWait returned %v on a full queue before a slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%v), want (1,true)", v, ok)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("EnqueueWait after slot freed = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EnqueueWait still blocked after a slot freed")
	}
	if v, ok := h.Dequeue(); !ok || v != 2 {
		t.Fatalf("Dequeue = (%d,%v), want (2,true)", v, ok)
	}
}

// TestEnqueueWaitContextCancel: cancellation must surface the context error
// without enqueueing, and close must surface ErrClosed to blocked producers.
func TestEnqueueWaitContextCancel(t *testing.T) {
	q := New(WithCapacity(1))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := h.EnqueueWait(ctx, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnqueueWait(expired ctx) = %v, want DeadlineExceeded", err)
	}
	if got := q.Metrics().Items; got != 1 {
		t.Fatalf("cancelled EnqueueWait leaked an item: Items = %d, want 1", got)
	}

	// A producer blocked at the capacity gate must observe Close.
	done := make(chan error, 1)
	go func() {
		ph := q.NewHandle()
		defer ph.Release()
		done <- ph.EnqueueWait(context.Background(), 3)
	}()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("EnqueueWait across Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EnqueueWait did not observe Close")
	}
}

// TestWatchdogCapacityStall drives the watchdog through a full
// detect-and-recover cycle: a queue pinned at capacity for consecutive
// checks must be flagged capacity-stall, and draining it must return the
// verdict to ok.
func TestWatchdogCapacityStall(t *testing.T) {
	q := New(WithCapacity(2), WithWatchdog(2*time.Millisecond))
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()
	h.TryEnqueue(1)
	h.TryEnqueue(2)

	// Keep hammering the full queue so every watchdog tick sees rejects.
	deadline := time.Now().Add(5 * time.Second)
	for q.Health().Verdict != "capacity-stall" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never flagged capacity-stall; health = %+v", q.Health())
		}
		h.TryEnqueue(3)
		time.Sleep(100 * time.Microsecond)
	}
	hl := q.Health()
	if hl.OK || hl.Checks == 0 {
		t.Fatalf("capacity-stall health inconsistent: %+v", hl)
	}
	if q.Metrics().Health.Verdict != hl.Verdict {
		t.Fatal("Metrics().Health disagrees with Health()")
	}

	// Recovery: drain and let traffic flow again.
	h.Dequeue()
	h.Dequeue()
	for q.Health().Verdict != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog stuck after recovery; health = %+v", q.Health())
		}
		h.TryEnqueue(4)
		h.Dequeue()
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWatchdogDisabled: without WithWatchdog the health endpoint reports a
// benign "disabled" verdict rather than fabricating checks.
func TestWatchdogDisabled(t *testing.T) {
	q := New()
	defer q.Close()
	h := q.Health()
	if !h.OK || h.Verdict != "disabled" || h.Checks != 0 {
		t.Fatalf("Health with no watchdog = %+v, want OK/disabled/0 checks", h)
	}
}

// TestTypedBounded: the typed facade forwards the bounded contract — and its
// internal free list must remain unbounded so slot recycling is unaffected.
func TestTypedBounded(t *testing.T) {
	q := NewTyped[string](WithCapacity(2), WithWaitBackoff(time.Microsecond, 50*time.Microsecond))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.TryEnqueue("b"); err != nil {
		t.Fatal(err)
	}
	if err := h.TryEnqueue("c"); !errors.Is(err, ErrFull) {
		t.Fatalf("typed TryEnqueue at capacity = %v, want ErrFull", err)
	}
	if ok := h.Enqueue("c"); ok {
		t.Fatal("typed Enqueue reported success at capacity")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ph := q.NewHandle()
		defer ph.Release()
		if err := ph.EnqueueWait(context.Background(), "c"); err != nil {
			t.Errorf("typed EnqueueWait = %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	for _, want := range []string{"a", "b"} {
		if v, ok := h.Dequeue(); !ok || v != want {
			t.Fatalf("typed Dequeue = (%q,%v), want (%q,true)", v, ok, want)
		}
	}
	wg.Wait()
	if v, ok := h.Dequeue(); !ok || v != "c" {
		t.Fatalf("typed Dequeue = (%q,%v), want (\"c\",true)", v, ok)
	}
	// Slot recycling survives far more than Capacity round-trips: the free
	// list itself must not be capacity-gated.
	for i := 0; i < 100; i++ {
		if err := h.TryEnqueue("x"); err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("round-trip %d: dequeue failed", i)
		}
	}
	if h := q.Health(); h.Verdict != "disabled" {
		t.Fatalf("typed Health = %+v", h)
	}
}

// TestGovernanceOffOverhead guards the unbounded fast path: with no
// capacity, ring budget, or watchdog configured, the public wrapper must
// stay within noise of the raw core loop (same guard style as
// TestTelemetryOffOverhead). Opt-in via LCRQ_GOVERNANCE_BENCH=1 since
// timing checks are too flaky for CI's shared runners.
func TestGovernanceOffOverhead(t *testing.T) {
	if os.Getenv("LCRQ_GOVERNANCE_BENCH") == "" {
		t.Skip("set LCRQ_GOVERNANCE_BENCH=1 to run the overhead smoke check")
	}
	q := New(WithRingSize(1 << 12))
	if m := q.Metrics(); m.Capacity != 0 || m.MaxRings != 0 {
		t.Fatal("default queue unexpectedly bounded")
	}
	h := q.NewHandle()
	defer h.Release()

	direct := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.q.Enqueue(h.h, uint64(i)|1<<62)
			q.q.Dequeue(h.h)
		}
	}
	wrapped := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i) | 1<<62)
			h.Dequeue()
		}
	}
	best := func(f func(*testing.B)) float64 {
		ns := 1e18
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			if v := float64(r.NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns
	}
	d, w := best(direct), best(wrapped)
	t.Logf("direct %.1f ns/op, wrapped (governance off) %.1f ns/op (%+.1f%%)",
		d, w, (w/d-1)*100)
	if w > d*1.25 {
		t.Fatalf("governance-off wrapper overhead too high: direct %.1f ns/op vs wrapped %.1f ns/op", d, w)
	}
}
