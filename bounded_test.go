package lcrq

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// TestTryEnqueueBackpressure exercises the non-blocking bounded contract at
// the public surface: accept up to capacity, ErrFull at the bound, writable
// again after a dequeue, ErrClosed after close.
func TestTryEnqueueBackpressure(t *testing.T) {
	q := New(WithCapacity(3))
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(1); i <= 3; i++ {
		if err := h.TryEnqueue(i); err != nil {
			t.Fatalf("TryEnqueue(%d) = %v", i, err)
		}
	}
	if err := h.TryEnqueue(4); !errors.Is(err, ErrFull) {
		t.Fatalf("TryEnqueue at capacity = %v, want ErrFull", err)
	}
	m := q.Metrics()
	if m.Capacity != 3 || m.Items != 3 || m.CapacityRejects == 0 {
		t.Fatalf("Metrics = {Capacity:%d Items:%d CapacityRejects:%d}, want {3 3 >0}",
			m.Capacity, m.Items, m.CapacityRejects)
	}
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%v), want (1,true)", v, ok)
	}
	if err := h.TryEnqueue(4); err != nil {
		t.Fatalf("TryEnqueue after freeing a slot = %v", err)
	}
	q.Close()
	if err := h.TryEnqueue(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryEnqueue after close = %v, want ErrClosed", err)
	}
	// The pooled variant agrees.
	if err := q.TryEnqueue(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Queue.TryEnqueue after close = %v, want ErrClosed", err)
	}
}

// TestEnqueueWaitUnblocks: a producer blocked on a full queue must complete
// as soon as a consumer frees a slot, and the released value must preserve
// FIFO order relative to the items already in flight.
func TestEnqueueWaitUnblocks(t *testing.T) {
	q := New(WithCapacity(1), WithWaitBackoff(time.Microsecond, 50*time.Microsecond))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ph := q.NewHandle()
		defer ph.Release()
		done <- ph.EnqueueWait(context.Background(), 2)
	}()
	select {
	case err := <-done:
		t.Fatalf("EnqueueWait returned %v on a full queue before a slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%v), want (1,true)", v, ok)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("EnqueueWait after slot freed = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EnqueueWait still blocked after a slot freed")
	}
	if v, ok := h.Dequeue(); !ok || v != 2 {
		t.Fatalf("Dequeue = (%d,%v), want (2,true)", v, ok)
	}
}

// TestEnqueueWaitContextCancel: cancellation must surface the context error
// without enqueueing, and close must surface ErrClosed to blocked producers.
func TestEnqueueWaitContextCancel(t *testing.T) {
	q := New(WithCapacity(1))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := h.EnqueueWait(ctx, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnqueueWait(expired ctx) = %v, want DeadlineExceeded", err)
	}
	if got := q.Metrics().Items; got != 1 {
		t.Fatalf("cancelled EnqueueWait leaked an item: Items = %d, want 1", got)
	}

	// A producer blocked at the capacity gate must observe Close.
	done := make(chan error, 1)
	go func() {
		ph := q.NewHandle()
		defer ph.Release()
		done <- ph.EnqueueWait(context.Background(), 3)
	}()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("EnqueueWait across Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EnqueueWait did not observe Close")
	}
}

// TestWatchdogCapacityStall drives the watchdog through a full
// detect-and-recover cycle: a queue pinned at capacity for consecutive
// checks must be flagged capacity-stall, and draining it must return the
// verdict to ok.
func TestWatchdogCapacityStall(t *testing.T) {
	q := New(WithCapacity(2), WithWatchdog(2*time.Millisecond))
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()
	h.TryEnqueue(1)
	h.TryEnqueue(2)

	// Keep hammering the full queue so every watchdog tick sees rejects.
	deadline := time.Now().Add(5 * time.Second)
	for q.Health().Verdict != "capacity-stall" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never flagged capacity-stall; health = %+v", q.Health())
		}
		h.TryEnqueue(3)
		time.Sleep(100 * time.Microsecond)
	}
	hl := q.Health()
	if hl.OK || hl.Checks == 0 {
		t.Fatalf("capacity-stall health inconsistent: %+v", hl)
	}
	if q.Metrics().Health.Verdict != hl.Verdict {
		t.Fatal("Metrics().Health disagrees with Health()")
	}

	// Recovery: drain and let traffic flow again.
	h.Dequeue()
	h.Dequeue()
	for q.Health().Verdict != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog stuck after recovery; health = %+v", q.Health())
		}
		h.TryEnqueue(4)
		h.Dequeue()
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWatchdogDisabled: without WithWatchdog the health endpoint reports a
// benign "disabled" verdict rather than fabricating checks.
func TestWatchdogDisabled(t *testing.T) {
	q := New()
	defer q.Close()
	h := q.Health()
	if !h.OK || h.Verdict != "disabled" || h.Checks != 0 {
		t.Fatalf("Health with no watchdog = %+v, want OK/disabled/0 checks", h)
	}
}

// TestTypedBounded: the typed facade forwards the bounded contract — and its
// internal free list must remain unbounded so slot recycling is unaffected.
func TestTypedBounded(t *testing.T) {
	q := NewTyped[string](WithCapacity(2), WithWaitBackoff(time.Microsecond, 50*time.Microsecond))
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue("a"); err != nil {
		t.Fatal(err)
	}
	if err := h.TryEnqueue("b"); err != nil {
		t.Fatal(err)
	}
	if err := h.TryEnqueue("c"); !errors.Is(err, ErrFull) {
		t.Fatalf("typed TryEnqueue at capacity = %v, want ErrFull", err)
	}
	if ok := h.Enqueue("c"); ok {
		t.Fatal("typed Enqueue reported success at capacity")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ph := q.NewHandle()
		defer ph.Release()
		if err := ph.EnqueueWait(context.Background(), "c"); err != nil {
			t.Errorf("typed EnqueueWait = %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	for _, want := range []string{"a", "b"} {
		if v, ok := h.Dequeue(); !ok || v != want {
			t.Fatalf("typed Dequeue = (%q,%v), want (%q,true)", v, ok, want)
		}
	}
	wg.Wait()
	if v, ok := h.Dequeue(); !ok || v != "c" {
		t.Fatalf("typed Dequeue = (%q,%v), want (\"c\",true)", v, ok)
	}
	// Slot recycling survives far more than Capacity round-trips: the free
	// list itself must not be capacity-gated.
	for i := 0; i < 100; i++ {
		if err := h.TryEnqueue("x"); err != nil {
			t.Fatalf("round-trip %d: %v", i, err)
		}
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("round-trip %d: dequeue failed", i)
		}
	}
	if h := q.Health(); h.Verdict != "disabled" {
		t.Fatalf("typed Health = %+v", h)
	}
}

// TestGovernanceOffOverhead guards the unbounded fast path: with no
// capacity, ring budget, or watchdog configured, the public wrapper must
// stay within noise of the raw core loop (same guard style as
// TestTelemetryOffOverhead). Opt-in via LCRQ_GOVERNANCE_BENCH=1 since
// timing checks are too flaky for CI's shared runners.
func TestGovernanceOffOverhead(t *testing.T) {
	if os.Getenv("LCRQ_GOVERNANCE_BENCH") == "" {
		t.Skip("set LCRQ_GOVERNANCE_BENCH=1 to run the overhead smoke check")
	}
	q := New(WithRingSize(1 << 12))
	if m := q.Metrics(); m.Capacity != 0 || m.MaxRings != 0 {
		t.Fatal("default queue unexpectedly bounded")
	}
	h := q.NewHandle()
	defer h.Release()

	direct := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.q.Enqueue(h.h, uint64(i)|1<<62)
			q.q.Dequeue(h.h)
		}
	}
	wrapped := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i) | 1<<62)
			h.Dequeue()
		}
	}
	best := func(f func(*testing.B)) float64 {
		ns := 1e18
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			if v := float64(r.NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns
	}
	d, w := best(direct), best(wrapped)
	t.Logf("direct %.1f ns/op, wrapped (governance off) %.1f ns/op (%+.1f%%)",
		d, w, (w/d-1)*100)
	if w > d*1.25 {
		t.Fatalf("governance-off wrapper overhead too high: direct %.1f ns/op vs wrapped %.1f ns/op", d, w)
	}
}

// TestWaitErrorTaxonomy: context expiry during EnqueueWait/DequeueWait must
// be distinguishable, via errors.Is, from the queue condition that forced
// the wait — a server needs "full for the whole deadline" (backpressure,
// retryable) and "caller cancelled" (not a queue condition) to map to
// different status codes.
func TestWaitErrorTaxonomy(t *testing.T) {
	q := New(WithCapacity(1), WithWaitBackoff(time.Microsecond, 50*time.Microsecond))
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()
	if err := h.TryEnqueue(1); err != nil {
		t.Fatal(err)
	}

	// Full queue + expired deadline → both ErrFull and DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	err := h.EnqueueWait(ctx, 2)
	cancel()
	if !errors.Is(err, ErrFull) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnqueueWait(full, expired) = %v, want Is(ErrFull) && Is(DeadlineExceeded)", err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrEmpty) {
		t.Fatalf("EnqueueWait error matches the wrong sentinels: %v", err)
	}
	var we *WaitError
	if !errors.As(err, &we) || we.State != ErrFull {
		t.Fatalf("EnqueueWait error not a *WaitError{State: ErrFull}: %v", err)
	}

	// Caller cancellation → Canceled, still tagged with the queue state.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := h.EnqueueWait(ctx2, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnqueueWait(cancelled) = %v, want Is(Canceled)", err)
	}

	// Empty queue + expired deadline on the dequeue side → ErrEmpty.
	if _, got := h.Dequeue(); !got {
		t.Fatal("queue should hold the item enqueued above")
	}
	ctx3, cancel3 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel3()
	_, err = h.DequeueWait(ctx3)
	if !errors.Is(err, ErrEmpty) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DequeueWait(empty, expired) = %v, want Is(ErrEmpty) && Is(DeadlineExceeded)", err)
	}
	if errors.Is(err, ErrFull) {
		t.Fatalf("DequeueWait error matches ErrFull: %v", err)
	}
}

// TestWatchdogRecoverEvent drives a capacity stall and its recovery, and
// asserts the event trace carries the paired watchdog-alert /
// watchdog-recover markers with the recovery hysteresis in between: the
// verdict must hold (annotated as recovering) until wdRecoverTicks
// consecutive clean checks pass, so Health() consumers never see a flap.
func TestWatchdogRecoverEvent(t *testing.T) {
	q := New(WithCapacity(2), WithWatchdog(2*time.Millisecond))
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()
	h.TryEnqueue(1)
	h.TryEnqueue(2)

	deadline := time.Now().Add(10 * time.Second)
	for q.Health().Verdict != "capacity-stall" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never flagged capacity-stall; health = %+v", q.Health())
		}
		h.TryEnqueue(3)
		time.Sleep(100 * time.Microsecond)
	}

	// Ease the load and wait for the published verdict to flip back.
	h.Dequeue()
	h.Dequeue()
	for q.Health().Verdict != "ok" {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog stuck after recovery; health = %+v", q.Health())
		}
		time.Sleep(100 * time.Microsecond)
	}

	m := q.Metrics()
	if m.RingEvents["watchdog-alert"] == 0 {
		t.Fatalf("no watchdog-alert event recorded; events = %v", m.RingEvents)
	}
	if m.RingEvents["watchdog-recover"] == 0 {
		t.Fatalf("no watchdog-recover event recorded; events = %v", m.RingEvents)
	}
	if a, r := m.RingEvents["watchdog-alert"], m.RingEvents["watchdog-recover"]; r > a {
		t.Fatalf("more recoveries (%d) than alerts (%d)", r, a)
	}
	// The trace orders the pair: recover follows its alert.
	var alertSeq, recoverSeq uint64
	for _, e := range q.Events() {
		switch e.Kind {
		case "watchdog-alert":
			if alertSeq == 0 {
				alertSeq = e.Seq + 1 // +1: Seq is 0-based, 0 means "not seen"
			}
		case "watchdog-recover":
			if recoverSeq == 0 {
				recoverSeq = e.Seq + 1
			}
		}
	}
	if alertSeq != 0 && recoverSeq != 0 && recoverSeq < alertSeq {
		t.Fatalf("watchdog-recover (seq %d) precedes watchdog-alert (seq %d)", recoverSeq-1, alertSeq-1)
	}
}

// TestWatchdogRecoverHysteresis unit-tests the publish state machine: a
// problem verdict must survive wdRecoverTicks-1 clean ticks unchanged and
// flip (with EvWatchdogRecover) only on the wdRecoverTicks-th.
func TestWatchdogRecoverHysteresis(t *testing.T) {
	w := &watchdog{health: Health{OK: true, Verdict: "ok"}}

	ev, fire := w.publish("capacity-stall", "full")
	if !fire || ev.String() != "watchdog-alert" {
		t.Fatalf("ok→problem published (%v,%v), want watchdog-alert", ev, fire)
	}
	if h := w.health; h.OK || h.Verdict != "capacity-stall" {
		t.Fatalf("health after alert = %+v", h)
	}

	// Clean ticks 1..wdRecoverTicks-1 hold the verdict, no event.
	for i := 1; i < wdRecoverTicks; i++ {
		ev, fire = w.publish("ok", "")
		if fire {
			t.Fatalf("clean tick %d fired %v before the hysteresis window closed", i, ev)
		}
		if h := w.health; h.OK || h.Verdict != "capacity-stall" {
			t.Fatalf("clean tick %d flipped early: %+v", i, h)
		}
	}

	// A relapse inside the window resets the streak without a fresh alert.
	if ev, fire = w.publish("capacity-stall", "full again"); fire {
		t.Fatalf("problem→problem fired %v", ev)
	}
	for i := 1; i < wdRecoverTicks; i++ {
		if _, fire = w.publish("ok", ""); fire {
			t.Fatalf("streak not reset by relapse (tick %d fired)", i)
		}
	}

	// The wdRecoverTicks-th consecutive clean tick flips and fires.
	ev, fire = w.publish("ok", "")
	if !fire || ev.String() != "watchdog-recover" {
		t.Fatalf("recovery tick published (%v,%v), want watchdog-recover", ev, fire)
	}
	if h := w.health; !h.OK || h.Verdict != "ok" || h.Detail != "" {
		t.Fatalf("health after recovery = %+v", h)
	}
}
